#include "benchsuite/harness.hh"

#include <cmath>

#include "base/logging.hh"

namespace cachemind::benchsuite {

double
EvalResult::tgPct() const
{
    double earned = 0.0, max = 0.0;
    for (const auto &rec : records) {
        if (isTraceGrounded(rec.category)) {
            earned += rec.grade.score;
            max += rec.grade.max;
        }
    }
    return max > 0.0 ? 100.0 * earned / max : 0.0;
}

double
EvalResult::araPct() const
{
    double earned = 0.0, max = 0.0;
    for (const auto &rec : records) {
        if (!isTraceGrounded(rec.category)) {
            earned += rec.grade.score;
            max += rec.grade.max;
        }
    }
    return max > 0.0 ? 100.0 * earned / max : 0.0;
}

double
EvalResult::weightedTotalPct() const
{
    // Every question contributes equally: TG 0/1, ARA score/5.
    double total = 0.0;
    for (const auto &rec : records)
        total += rec.grade.pct();
    return records.empty()
               ? 0.0
               : 100.0 * total / static_cast<double>(records.size());
}

double
EvalResult::qualityBucketPct(retrieval::ContextQuality q) const
{
    double earned = 0.0, max = 0.0;
    for (const auto &rec : records) {
        if (rec.quality == q) {
            earned += rec.grade.score;
            max += rec.grade.max;
        }
    }
    return max > 0.0 ? 100.0 * earned / max : 0.0;
}

std::size_t
EvalResult::qualityBucketCount(retrieval::ContextQuality q) const
{
    std::size_t n = 0;
    for (const auto &rec : records)
        n += rec.quality == q;
    return n;
}

std::vector<std::size_t>
EvalResult::araScoreHistogram() const
{
    std::vector<std::size_t> hist(6, 0);
    for (const auto &rec : records) {
        if (!isTraceGrounded(rec.category)) {
            const int s = std::min(5, std::max(0, rec.score_bucket));
            ++hist[static_cast<std::size_t>(s)];
        }
    }
    return hist;
}

void
EvalHarness::accumulate(const Question &q,
                        const retrieval::ContextBundle &bundle,
                        const llm::Answer &answer,
                        EvalResult &result) const
{
    QuestionRecord rec;
    rec.question_id = q.id;
    rec.category = q.category;
    rec.grade = grade(q, answer);
    rec.quality = retrieval::assessQuality(bundle);
    rec.score_bucket = static_cast<int>(std::lround(rec.grade.score));
    rec.answer_text = answer.text;
    result.records.push_back(rec);

    CategoryScore &cs = result.by_category[q.category];
    cs.category = q.category;
    cs.earned += rec.grade.score;
    cs.max += rec.grade.max;
    ++cs.questions;
}

EvalResult
EvalHarness::evaluate(retrieval::Retriever &retriever,
                      const llm::GeneratorLlm &generator,
                      const llm::GenerationOptions &opts) const
{
    EvalResult result;
    result.records.reserve(suite_.size());
    for (const auto &q : suite_) {
        const auto bundle = retriever.retrieve(q.text);
        const auto answer = generator.answer(bundle, opts);
        accumulate(q, bundle, answer, result);
    }
    return result;
}

EvalResult
EvalHarness::evaluate(core::CacheMind &engine) const
{
    std::vector<std::string> texts;
    texts.reserve(suite_.size());
    for (const auto &q : suite_)
        texts.push_back(q.text);

    // A malformed suite (e.g. a blank question in a user-supplied
    // vector) is a user error: exit with the typed message rather
    // than aborting.
    auto batch = engine.askBatch(texts);
    if (!batch.ok()) {
        CM_FATAL("askBatch failed over the question suite: ",
                 core::errorMessage(batch.error()));
    }
    const auto responses = std::move(batch).value();

    EvalResult result;
    result.records.reserve(suite_.size());
    for (std::size_t i = 0; i < suite_.size(); ++i) {
        accumulate(suite_[i], responses[i].bundle, responses[i].answer,
                   result);
    }
    return result;
}

} // namespace cachemind::benchsuite
