#include "benchsuite/grader.hh"

#include <cmath>

#include "base/str.hh"

namespace cachemind::benchsuite {

namespace {

bool
numberMatches(double got, const GoldAnswer &gold)
{
    if (!gold.number)
        return false;
    const double want = *gold.number;
    const double abs_err = std::fabs(got - want);
    if (gold.abs_tolerance > 0.0 && abs_err <= gold.abs_tolerance)
        return true;
    if (gold.rel_tolerance > 0.0 &&
        abs_err <= std::fabs(want) * gold.rel_tolerance) {
        return true;
    }
    return abs_err == 0.0;
}

} // namespace

GradeResult
gradeExact(const Question &q, const llm::Answer &answer)
{
    GradeResult r;
    r.max = 1.0;

    if (!answer.engaged) {
        r.note = "model did not engage";
        return r;
    }

    if (q.gold.is_trick) {
        r.correct = answer.rejected_premise;
        r.note = r.correct ? "premise correctly rejected"
                           : "hallucinated an answer to a false premise";
    } else if (q.gold.is_hit.has_value()) {
        if (answer.rejected_premise) {
            r.note = "valid premise wrongly rejected";
        } else if (answer.says_hit.has_value()) {
            r.correct = *answer.says_hit == *q.gold.is_hit;
            r.note = r.correct ? "hit/miss verdict matches trace"
                               : "hit/miss verdict contradicts trace";
        } else {
            r.note = "no hit/miss verdict produced";
        }
    } else if (q.gold.number.has_value()) {
        if (answer.rejected_premise) {
            r.note = "valid premise wrongly rejected";
        } else if (answer.number.has_value()) {
            r.correct = numberMatches(*answer.number, q.gold);
            r.note = r.correct ? "numeric answer within tolerance"
                               : "numeric answer out of tolerance";
        } else {
            r.note = "no numeric answer produced";
        }
    } else if (q.gold.policy.has_value()) {
        if (answer.chosen_policy.has_value()) {
            r.correct = str::toLower(*answer.chosen_policy) ==
                        str::toLower(*q.gold.policy);
            r.note = r.correct ? "policy choice matches ground truth"
                               : "wrong policy chosen";
        } else {
            r.note = "no policy chosen";
        }
    } else {
        r.note = "question has no gold key";
    }
    r.score = r.correct ? 1.0 : 0.0;
    return r;
}

GradeResult
gradeRubric(const Question &q, const llm::Answer &answer)
{
    GradeResult r;
    r.max = 5.0;
    if (!answer.engaged) {
        r.note = "model did not engage";
        return r;
    }
    const std::string lower = str::toLower(answer.text);

    // Correctness: up to 3 points for covering the key terms.
    double correctness = 0.0;
    if (!q.gold.key_terms.empty()) {
        std::size_t found = 0;
        for (const auto &term : q.gold.key_terms) {
            if (lower.find(str::toLower(term)) != std::string::npos)
                ++found;
        }
        correctness = 3.0 * static_cast<double>(found) /
                      static_cast<double>(q.gold.key_terms.size());
    }

    // Evidence use: 1 point for citing gold evidence (or any cited
    // evidence when the gold does not pin specific tokens), voided
    // when the model fabricated/copied context.
    double evidence = 0.0;
    if (!answer.copied_example) {
        if (q.gold.evidence_terms.empty()) {
            evidence = answer.evidence.empty() ? 0.0 : 1.0;
        } else {
            for (const auto &term : q.gold.evidence_terms) {
                if (lower.find(str::toLower(term)) !=
                    std::string::npos) {
                    evidence = 1.0;
                    break;
                }
            }
        }
    }

    // Clarity: 1 point for a substantive, structured response.
    double clarity = 0.0;
    const std::size_t len = answer.text.size();
    std::size_t sentences = 0;
    for (const char c : answer.text)
        sentences += c == '.';
    if (len >= 80 && len <= 2000 && sentences >= 2)
        clarity = 1.0;

    r.score = std::min(5.0, correctness + evidence + clarity);
    // Round to the paper's integer 0-5 scale.
    r.score = std::round(r.score);
    r.correct = r.score >= 4.5;
    r.note = "rubric: correctness=" + str::fixed(correctness, 1) +
             " evidence=" + str::fixed(evidence, 0) +
             " clarity=" + str::fixed(clarity, 0);
    return r;
}

GradeResult
grade(const Question &q, const llm::Answer &answer)
{
    return isTraceGrounded(q.category) ? gradeExact(q, answer)
                                       : gradeRubric(q, answer);
}

} // namespace cachemind::benchsuite
