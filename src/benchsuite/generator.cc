#include "benchsuite/generator.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace cachemind::benchsuite {

namespace {

/** Uppercase display form of a policy name ("PARROT", "LRU"). */
std::string
policyDisplay(const std::string &policy)
{
    std::string out = policy;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) {
                       return static_cast<char>(std::toupper(c));
                   });
    if (out == "BELADY")
        return "Belady";
    return out;
}

} // namespace

BenchGenerator::BenchGenerator(db::ShardSet shards, std::uint64_t seed,
                               SuiteComposition composition)
    : db_(std::move(shards)), seed_(seed), comp_(composition)
{
    CM_ASSERT(db_.size() > 0, "benchmark needs a non-empty database");
}

std::vector<Question>
BenchGenerator::generate() const
{
    std::vector<Question> out;
    std::size_t id = 0;
    auto extend = [&out, &id](std::vector<Question> qs) {
        for (auto &q : qs) {
            q.id = id++;
            out.push_back(std::move(q));
        }
    };
    extend(makeHitMiss(comp_.hit_miss, id));
    extend(makeMissRate(comp_.miss_rate, id));
    extend(makePolicyComparison(comp_.policy_comparison, id));
    extend(makeCount(comp_.count, id));
    extend(makeArithmetic(comp_.arithmetic, id));
    extend(makeTrick(comp_.trick, id));
    extend(makeConcepts(comp_.concepts, id));
    extend(makeCodeGen(comp_.code_gen, id));
    extend(makePolicyAnalysis(comp_.policy_analysis, id));
    extend(makeWorkloadAnalysis(comp_.workload_analysis, id));
    extend(makeSemanticAnalysis(comp_.semantic_analysis, id));
    return out;
}

std::vector<Question>
BenchGenerator::makeHitMiss(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x11));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 400) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        const auto &table = entry->table;
        if (table.empty())
            continue;
        const std::size_t i = rng.nextBelow(table.size());
        const std::uint64_t pc = table.pcAt(i);
        const std::uint64_t addr = table.addressAt(i);
        // Require a consistent outcome across every occurrence of the
        // (pc, address) pair so the gold is unambiguous.
        const auto rows = table.filter(&pc, &addr);
        bool consistent = true;
        for (const auto r : rows) {
            if (table.isMissAt(r) != table.isMissAt(rows[0]))
                consistent = false;
        }
        if (!consistent || rows.empty())
            continue;
        Question q;
        q.category = Category::HitMiss;
        q.trace_key = key;
        std::ostringstream os;
        os << "Does the memory access with PC " << str::hex(pc)
           << " and address " << str::hex(addr)
           << " result in a cache hit or cache miss for the "
           << entry->workload << " workload and "
           << policyDisplay(entry->policy) << " replacement policy?";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.is_hit = !table.isMissAt(rows[0]);
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n, "could not generate hit/miss questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeMissRate(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x22));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 400) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        const auto *expert = db_.statsFor(key);
        const auto pcs = entry->table.uniquePcs();
        if (pcs.empty())
            continue;
        const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
        const auto stats = expert->pcStats(pc);
        if (!stats || stats->accesses < 50)
            continue;
        Question q;
        q.category = Category::MissRate;
        q.trace_key = key;
        std::ostringstream os;
        os << "What is the miss rate for PC " << str::hex(pc)
           << " in the " << entry->workload << " workload with "
           << policyDisplay(entry->policy) << "?";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.number = stats->missRate();
        q.gold.abs_tolerance = 0.005;
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n, "could not generate miss-rate questions");
    return out;
}

std::vector<Question>
BenchGenerator::makePolicyComparison(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x33));
    const auto workloads = db_.workloads();
    const auto policies = db_.policies();
    std::size_t guard = 0;
    const std::size_t guard_limit = n * 6000;
    while (out.size() < n && guard++ < guard_limit) {
        // Progressively relax the winner margin when the candidate
        // space is tight for this database build.
        const double margin = guard < guard_limit / 3 ? 0.01
                              : guard < 2 * guard_limit / 3
                                  ? 0.002
                                  : 1e-9;
        const auto &workload =
            workloads[rng.nextBelow(workloads.size())];
        const bool per_pc = rng.nextBool(0.7);
        const bool lowest = rng.nextBool(0.6);

        std::vector<std::pair<std::string, double>> rates;
        std::uint64_t pc = 0;
        if (per_pc) {
            // A PC present under every policy of the workload.
            const auto *first =
                db_.find(workload, policies[0]);
            if (!first)
                continue;
            const auto pcs = first->table.uniquePcs();
            pc = pcs[rng.nextBelow(pcs.size())];
            bool ok = true;
            for (const auto &policy : policies) {
                const auto *expert = db_.statsFor(
                    db::shardKey(workload, policy));
                if (!expert) {
                    ok = false;
                    break;
                }
                const auto stats = expert->pcStats(pc);
                if (!stats || stats->accesses < 30) {
                    ok = false;
                    break;
                }
                rates.emplace_back(policy, stats->missRate());
            }
            if (!ok)
                continue;
        } else {
            for (const auto &policy : policies) {
                const auto *expert = db_.statsFor(
                    db::shardKey(workload, policy));
                if (!expert)
                    continue;
                rates.emplace_back(policy,
                                   expert->summary().missRate());
            }
            if (rates.size() < 2)
                continue;
        }
        std::sort(rates.begin(), rates.end(),
                  [](const auto &a, const auto &b) {
                      return a.second < b.second;
                  });
        // Require an unambiguous winner with the current margin.
        if (lowest) {
            if (rates[1].second - rates[0].second < margin)
                continue;
        } else {
            if (rates[rates.size() - 1].second -
                    rates[rates.size() - 2].second < margin) {
                continue;
            }
        }
        Question q;
        q.category = Category::PolicyComparison;
        q.trace_key = db::shardKey(workload, "lru");
        std::ostringstream os;
        os << "Which policy has the " << (lowest ? "lowest" : "highest")
           << " miss rate ";
        if (per_pc)
            os << "for PC " << str::hex(pc) << " ";
        os << "in the " << workload << " workload?";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.policy =
            lowest ? rates.front().first : rates.back().first;
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n,
              "could not generate policy-comparison questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeCount(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x44));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 400) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        const auto *expert = db_.statsFor(key);
        const auto pcs = entry->table.uniquePcs();
        if (pcs.empty())
            continue;
        const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
        const auto stats = expert->pcStats(pc);
        // Interesting counts: beyond any plausible context window.
        if (!stats || stats->accesses < 100)
            continue;
        Question q;
        q.category = Category::Count;
        q.trace_key = key;
        std::ostringstream os;
        os << "How many times did PC " << str::hex(pc)
           << " appear in the " << entry->workload << " workload under "
           << policyDisplay(entry->policy) << "?";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.number = static_cast<double>(stats->accesses);
        q.gold.abs_tolerance = 0.0;
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n, "could not generate count questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeArithmetic(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x55));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 600) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        const auto *expert = db_.statsFor(key);
        const auto pcs = entry->table.uniquePcs();
        if (pcs.empty())
            continue;
        const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
        const auto stats = expert->pcStats(pc);
        if (!stats || stats->accesses < 100)
            continue;

        // Rotate across aggregate flavours: some are answerable from
        // per-PC statistics (mean/std), others need full-slice scans
        // (max/min/sum) that only executed programs can do.
        const std::size_t flavour = out.size() % 5;
        Question q;
        q.category = Category::Arithmetic;
        q.trace_key = key;
        std::ostringstream os;
        double gold = 0.0;
        const std::uint64_t pc_copy = pc;
        auto scan = [&](auto fn) {
            const auto rows = entry->table.filter(&pc_copy, nullptr);
            for (const auto r : rows)
                fn(r);
        };
        switch (flavour) {
          case 0: {
            if (stats->mean_evicted_reuse_distance <= 0.0)
                continue;
            os << "What is the average evicted reuse distance of PC "
               << str::hex(pc) << " for the " << entry->workload
               << " workload with " << policyDisplay(entry->policy)
               << "?";
            gold = stats->mean_evicted_reuse_distance;
            break;
          }
          case 1: {
            if (stats->reuse_distance_stdev <= 0.0)
                continue;
            os << "What is the standard deviation of the reuse "
                  "distance of PC "
               << str::hex(pc) << " in the " << entry->workload
               << " workload under " << policyDisplay(entry->policy)
               << "?";
            gold = stats->reuse_distance_stdev;
            break;
          }
          case 2: {
            double mx = -1.0;
            scan([&](std::size_t r) {
                const auto v = entry->table.reuseDistanceAt(r);
                if (v != db::kNoValue)
                    mx = std::max(mx, static_cast<double>(v));
            });
            if (mx < 1.0)
                continue;
            os << "What is the maximum reuse distance observed for PC "
               << str::hex(pc) << " in the " << entry->workload
               << " workload under " << policyDisplay(entry->policy)
               << "?";
            gold = mx;
            break;
          }
          case 3: {
            double sum = 0.0;
            bool any = false;
            scan([&](std::size_t r) {
                const auto v =
                    entry->table.evictedReuseDistanceAt(r);
                if (v != db::kNoValue) {
                    sum += static_cast<double>(v);
                    any = true;
                }
            });
            if (!any || sum < 1.0)
                continue;
            os << "What is the sum of the evicted reuse distances "
                  "caused by PC "
               << str::hex(pc) << " in the " << entry->workload
               << " workload under " << policyDisplay(entry->policy)
               << "?";
            gold = sum;
            break;
          }
          default: {
            if (stats->mean_recency <= 0.0)
                continue;
            os << "What is the average recency of PC " << str::hex(pc)
               << " in the " << entry->workload << " workload with "
               << policyDisplay(entry->policy) << "?";
            gold = stats->mean_recency;
            break;
          }
        }
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.number = gold;
        q.gold.rel_tolerance = 0.02;
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n,
              "could not generate arithmetic questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeTrick(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x66));
    const auto workloads = db_.workloads();
    const auto policies = db_.policies();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 600) {
        // Premise type A: PC from workload A asked about workload B.
        // Premise type B: PC and address both exist but never co-occur.
        const bool cross_workload = out.size() % 2 == 0;
        const auto &wa = workloads[rng.nextBelow(workloads.size())];
        const auto &policy = policies[rng.nextBelow(policies.size())];
        const auto *entry_a = db_.find(wa, policy);
        if (!entry_a || entry_a->table.empty())
            continue;

        Question q;
        q.category = Category::TrickQuestion;
        q.gold.is_trick = true;

        if (cross_workload) {
            // Find a PC unique to another workload.
            std::string wb;
            for (const auto &cand : workloads) {
                if (cand != wa) {
                    wb = cand;
                    break;
                }
            }
            const auto *entry_b = db_.find(wb, policy);
            if (!entry_b)
                continue;
            const auto pcs_b = entry_b->table.uniquePcs();
            std::uint64_t foreign = 0;
            for (const auto pc : pcs_b) {
                if (!entry_a->table.containsPc(pc)) {
                    foreign = pc;
                    break;
                }
            }
            if (!foreign)
                continue;
            const std::size_t i =
                rng.nextBelow(entry_a->table.size());
            const std::uint64_t addr = entry_a->table.addressAt(i);
            q.trace_key = db::shardKey(wa, policy);
            std::ostringstream os;
            os << "Does the memory access with PC " << str::hex(foreign)
               << " and address " << str::hex(addr)
               << " result in a cache hit or cache miss for the " << wa
               << " workload and " << policyDisplay(policy)
               << " replacement policy?";
            q.text = os.str();
        } else {
            // PC and address both present, never together.
            const auto &table = entry_a->table;
            const auto pcs = table.uniquePcs();
            const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
            const std::size_t i = rng.nextBelow(table.size());
            const std::uint64_t addr = table.addressAt(i);
            if (table.pcAt(i) == pc)
                continue;
            if (!table.filter(&pc, &addr, 1).empty())
                continue;
            q.trace_key = db::shardKey(wa, policy);
            std::ostringstream os;
            os << "Does the memory access with PC " << str::hex(pc)
               << " and address " << str::hex(addr)
               << " result in a cache hit or cache miss for the " << wa
               << " workload and " << policyDisplay(policy)
               << " replacement policy?";
            q.text = os.str();
        }
        if (q.text.empty() || !used.insert(q.text).second)
            continue;
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n, "could not generate trick questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeConcepts(std::size_t n, std::size_t) const
{
    // Static, curated concept questions with rubric terms drawn from
    // the knowledge base topics (the generator models latent
    // knowledge; the rubric checks the same canonical points).
    std::vector<Question> all;
    auto add = [&all](const char *text,
                      std::initializer_list<const char *> key_terms) {
        Question q;
        q.category = Category::MicroarchConcepts;
        q.text = text;
        for (const auto *t : key_terms)
            q.gold.key_terms.emplace_back(t);
        all.push_back(std::move(q));
    };
    add("How does increasing cache size affect miss rate? Compare "
        "increasing the number of sets vs the number of ways.",
        {"capacity", "conflict", "sets", "ways"});
    add("Decompose a memory address into offset, index and tag bits "
        "for a cache with 64-byte lines and 2048 sets.",
        {"offset", "index", "tag", "6", "11"});
    add("What does a replacement policy do, and why does LRU break "
        "down on streaming scans?",
        {"victim", "recency", "scan"});
    add("Explain the difference between compulsory, capacity and "
        "conflict misses in a set-associative cache.",
        {"first", "fully associative", "collision"});
    add("How does software prefetching hide memory latency, and when "
        "does it hurt?",
        {"before the demand", "stall", "pollut"});
    add("What is reuse distance and how does it relate to whether a "
        "policy hits?",
        {"accesses between", "capacity", "forward"});
    if (all.size() > n)
        all.resize(n);
    CM_ASSERT(all.size() == n, "concept question shortfall");
    return all;
}

std::vector<Question>
BenchGenerator::makeCodeGen(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x88));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 400) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        if (entry->table.empty())
            continue;
        const std::size_t i = rng.nextBelow(entry->table.size());
        const std::uint64_t pc = entry->table.pcAt(i);
        const std::uint64_t addr = entry->table.addressAt(i);
        Question q;
        q.category = Category::CodeGeneration;
        q.trace_key = key;
        std::ostringstream os;
        os << "Write code to compute the number of cache hits for PC "
           << str::hex(pc) << " and address " << str::hex(addr)
           << " in the " << entry->workload << " workload under "
           << policyDisplay(entry->policy) << ".";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.key_terms = {key, str::hex(pc), "hit"};
        q.gold.evidence_terms = {str::hex(pc)};
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n, "could not generate code-gen questions");
    return out;
}

std::vector<Question>
BenchGenerator::makePolicyAnalysis(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0x99));
    const auto workloads = db_.workloads();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 800) {
        const auto &workload =
            workloads[rng.nextBelow(workloads.size())];
        const auto *belady_exp = db_.statsFor(
            db::shardKey(workload, "belady"));
        const auto *lru_exp =
            db_.statsFor(db::shardKey(workload, "lru"));
        if (!belady_exp || !lru_exp)
            continue;
        const auto *entry = db_.find(workload, "lru");
        const auto pcs = entry->table.uniquePcs();
        const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
        const auto bs = belady_exp->pcStats(pc);
        const auto ls = lru_exp->pcStats(pc);
        if (!bs || !ls || bs->accesses < 100)
            continue;
        if (bs->hitRate() < ls->hitRate() + 0.05)
            continue;
        Question q;
        q.category = Category::ReplacementPolicyAnalysis;
        q.trace_key = db::shardKey(workload, "belady");
        std::ostringstream os;
        os << "Why does Belady outperform LRU on PC " << str::hex(pc)
           << " in the " << workload << " workload?";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.key_terms = {"future", "reuse distance", "recency"};
        q.gold.evidence_terms = {str::hex(pc)};
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n,
              "could not generate policy-analysis questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeWorkloadAnalysis(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0xaa));
    const auto workloads = db_.workloads();
    const auto policies = db_.policies();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 400) {
        const auto &policy = policies[rng.nextBelow(policies.size())];
        std::string best_workload;
        double best_rate = -1.0;
        for (const auto &workload : workloads) {
            const auto *expert = db_.statsFor(
                db::shardKey(workload, policy));
            if (!expert)
                continue;
            if (expert->summary().missRate() > best_rate) {
                best_rate = expert->summary().missRate();
                best_workload = workload;
            }
        }
        if (best_workload.empty())
            continue;
        Question q;
        q.category = Category::WorkloadAnalysis;
        q.trace_key =
            db::shardKey(best_workload, policy);
        std::ostringstream os;
        if (out.size() % 2 == 0) {
            os << "Comparing the ";
            for (std::size_t i = 0; i < workloads.size(); ++i)
                os << (i ? ", " : "") << workloads[i];
            os << " workloads under " << policyDisplay(policy)
               << ", which has the highest cache miss rate? Analyze "
                  "the workload characteristics that explain it.";
        } else {
            os << "Rank the ";
            for (std::size_t i = 0; i < workloads.size(); ++i)
                os << (i ? ", " : "") << workloads[i];
            os << " workloads by cache miss rate under "
               << policyDisplay(policy)
               << " and explain which workload behaviour drives the "
                  "highest rate.";
        }
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.key_terms = {best_workload, "capacity"};
        q.gold.evidence_terms = {best_workload};
        out.push_back(std::move(q));
        if (out.size() >= n)
            break;
    }
    CM_ASSERT(out.size() == n,
              "could not generate workload-analysis questions");
    return out;
}

std::vector<Question>
BenchGenerator::makeSemanticAnalysis(std::size_t n, std::size_t) const
{
    std::vector<Question> out;
    std::set<std::string> used;
    Rng rng(hashCombine(seed_, 0xbb));
    const auto keys = db_.keys();
    std::size_t guard = 0;
    while (out.size() < n && guard++ < n * 600) {
        const auto &key = keys[rng.nextBelow(keys.size())];
        const auto *entry = db_.find(key);
        const auto *expert = db_.statsFor(key);
        const trace::SymbolTable *symbols = entry->table.symbols();
        if (!symbols)
            continue;
        const auto pcs = entry->table.uniquePcs();
        const std::uint64_t pc = pcs[rng.nextBelow(pcs.size())];
        const auto stats = expert->pcStats(pc);
        if (!stats || stats->accesses < 200)
            continue;
        const bool high_hit = stats->hitRate() > 0.6;
        const bool high_miss = stats->missRate() > 0.8;
        if (!high_hit && !high_miss)
            continue;
        const std::string fn = symbols->functionName(pc);
        if (fn == "unknown")
            continue;
        Question q;
        q.category = Category::SemanticAnalysis;
        q.trace_key = key;
        std::ostringstream os;
        os << "Why does PC " << str::hex(pc) << " have a "
           << (high_hit ? "high hit rate" : "high miss rate")
           << " in the " << entry->workload << " workload under "
           << policyDisplay(entry->policy)
           << "? Examine the assembly context and analyze.";
        q.text = os.str();
        if (!used.insert(q.text).second)
            continue;
        q.gold.key_terms = {fn, "reuse"};
        q.gold.evidence_terms = {str::hex(pc)};
        out.push_back(std::move(q));
    }
    CM_ASSERT(out.size() == n,
              "could not generate semantic-analysis questions");
    return out;
}

} // namespace cachemind::benchsuite
