#include "benchsuite/question.hh"

namespace cachemind::benchsuite {

const std::vector<Category> &
allCategories()
{
    static const std::vector<Category> cats = {
        Category::HitMiss,
        Category::MissRate,
        Category::PolicyComparison,
        Category::Count,
        Category::Arithmetic,
        Category::TrickQuestion,
        Category::MicroarchConcepts,
        Category::CodeGeneration,
        Category::ReplacementPolicyAnalysis,
        Category::WorkloadAnalysis,
        Category::SemanticAnalysis,
    };
    return cats;
}

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::HitMiss: return "Hit/Miss";
      case Category::MissRate: return "Miss Rate";
      case Category::PolicyComparison: return "Policy Comparison";
      case Category::Count: return "Count";
      case Category::Arithmetic: return "Arithmetic";
      case Category::TrickQuestion: return "Trick Question";
      case Category::MicroarchConcepts:
        return "Microarchitecture Concepts";
      case Category::CodeGeneration: return "Code Generation";
      case Category::ReplacementPolicyAnalysis:
        return "Policy Analysis";
      case Category::WorkloadAnalysis: return "Workload Analysis";
      case Category::SemanticAnalysis: return "Semantic Analysis";
    }
    return "?";
}

bool
isTraceGrounded(Category cat)
{
    switch (cat) {
      case Category::HitMiss:
      case Category::MissRate:
      case Category::PolicyComparison:
      case Category::Count:
      case Category::Arithmetic:
      case Category::TrickQuestion:
        return true;
      default: return false;
    }
}

} // namespace cachemind::benchsuite
