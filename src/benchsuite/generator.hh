/**
 * @file
 * CacheMindBench question generator.
 *
 * The paper hand-curated 100 questions against its traces; here the
 * suite is generated programmatically against the built database with
 * the same Table 1 composition (30/10/15/5/10/5 trace-grounded,
 * 5x5 reasoning) and a single source of truth: every gold answer is
 * computed from the same tables the retrievers query. Generation is
 * seeded and deterministic.
 */

#ifndef CACHEMIND_BENCHSUITE_GENERATOR_HH
#define CACHEMIND_BENCHSUITE_GENERATOR_HH

#include "benchsuite/question.hh"
#include "db/shard.hh"

namespace cachemind::benchsuite {

/** Table 1 category sizes. */
struct SuiteComposition
{
    std::size_t hit_miss = 30;
    std::size_t miss_rate = 10;
    std::size_t policy_comparison = 15;
    std::size_t count = 5;
    std::size_t arithmetic = 10;
    std::size_t trick = 5;
    std::size_t concepts = 5;
    std::size_t code_gen = 5;
    std::size_t policy_analysis = 5;
    std::size_t workload_analysis = 5;
    std::size_t semantic_analysis = 5;

    std::size_t
    total() const
    {
        return hit_miss + miss_rate + policy_comparison + count +
               arithmetic + trick + concepts + code_gen +
               policy_analysis + workload_analysis + semantic_analysis;
    }
};

/** Deterministic benchmark generator over a built shard view. */
class BenchGenerator
{
  public:
    BenchGenerator(db::ShardSet shards, std::uint64_t seed = 0xbe7c4ULL,
                   SuiteComposition composition = SuiteComposition{});

    /** Generate the full suite (Table 1 composition). */
    std::vector<Question> generate() const;

  private:
    std::vector<Question> makeHitMiss(std::size_t n,
                                      std::size_t first_id) const;
    std::vector<Question> makeMissRate(std::size_t n,
                                       std::size_t first_id) const;
    std::vector<Question> makePolicyComparison(std::size_t n,
                                               std::size_t first_id)
        const;
    std::vector<Question> makeCount(std::size_t n,
                                    std::size_t first_id) const;
    std::vector<Question> makeArithmetic(std::size_t n,
                                         std::size_t first_id) const;
    std::vector<Question> makeTrick(std::size_t n,
                                    std::size_t first_id) const;
    std::vector<Question> makeConcepts(std::size_t n,
                                       std::size_t first_id) const;
    std::vector<Question> makeCodeGen(std::size_t n,
                                      std::size_t first_id) const;
    std::vector<Question> makePolicyAnalysis(std::size_t n,
                                             std::size_t first_id) const;
    std::vector<Question> makeWorkloadAnalysis(std::size_t n,
                                               std::size_t first_id)
        const;
    std::vector<Question> makeSemanticAnalysis(std::size_t n,
                                               std::size_t first_id)
        const;

    db::ShardSet db_;
    std::uint64_t seed_;
    SuiteComposition comp_;
};

} // namespace cachemind::benchsuite

#endif // CACHEMIND_BENCHSUITE_GENERATOR_HH
