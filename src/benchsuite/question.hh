/**
 * @file
 * CacheMindBench question model (§4, Table 1): 11 categories in two
 * tiers — 75 trace-grounded questions scored 0/1 by exact match, and
 * 25 architectural-reasoning questions rubric-graded 0–5.
 */

#ifndef CACHEMIND_BENCHSUITE_QUESTION_HH
#define CACHEMIND_BENCHSUITE_QUESTION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cachemind::benchsuite {

/** The 11 benchmark categories. */
enum class Category {
    // Trace-grounded tier (binary scoring).
    HitMiss,
    MissRate,
    PolicyComparison,
    Count,
    Arithmetic,
    TrickQuestion,
    // Architectural reasoning tier (rubric 0-5).
    MicroarchConcepts,
    CodeGeneration,
    ReplacementPolicyAnalysis,
    WorkloadAnalysis,
    SemanticAnalysis,
};

/** All categories in Table 1 order. */
const std::vector<Category> &allCategories();

/** Display name, e.g. "Policy Comparison". */
const char *categoryName(Category cat);

/** True for the trace-grounded (binary-scored) tier. */
bool isTraceGrounded(Category cat);

/** Verified ground truth for one question. */
struct GoldAnswer
{
    /** HitMiss gold: true = hit. */
    std::optional<bool> is_hit;
    /** Numeric gold (rates as fractions, counts, aggregates). */
    std::optional<double> number;
    /** Absolute tolerance for numeric comparison. */
    double abs_tolerance = 0.0;
    /** Relative tolerance for numeric comparison. */
    double rel_tolerance = 0.0;
    /** PolicyComparison gold. */
    std::optional<std::string> policy;
    /** The premise is invalid; the correct answer is rejection. */
    bool is_trick = false;
    /** ARA rubric: terms a correct answer must mention. */
    std::vector<std::string> key_terms;
    /** ARA rubric: evidence tokens a grounded answer cites. */
    std::vector<std::string> evidence_terms;
};

/** One benchmark item. */
struct Question
{
    std::size_t id = 0;
    Category category = Category::HitMiss;
    std::string text;
    GoldAnswer gold;
    /** Trace the gold was computed from (diagnostics). */
    std::string trace_key;
};

} // namespace cachemind::benchsuite

#endif // CACHEMIND_BENCHSUITE_QUESTION_HH
