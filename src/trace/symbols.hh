/**
 * @file
 * Source-level metadata for trace PCs.
 *
 * The paper augments ChampSim output with per-PC function names, source
 * snippets, and disassembly (§5 "Traces and Metadata"). Real SPEC
 * binaries are not available offline, so each workload model registers
 * a symbol table describing its synthetic functions; disassembly text
 * is generated deterministically per PC so that identical PCs always
 * render identical assembly context (required for exact-match grading).
 */

#ifndef CACHEMIND_TRACE_SYMBOLS_HH
#define CACHEMIND_TRACE_SYMBOLS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cachemind::trace {

/** One synthetic function: a PC range plus source-level context. */
struct FunctionInfo
{
    /** Mangled or plain function name, e.g. "primal_bea_mpp". */
    std::string name;
    /** First PC of the function body. */
    std::uint64_t pc_begin = 0;
    /** One past the last PC. */
    std::uint64_t pc_end = 0;
    /** Short C-like source snippet representative of the function. */
    std::string source;
};

/**
 * Maps PCs to functions and renders synthetic disassembly.
 *
 * Lookup is by PC range; functions must not overlap.
 */
class SymbolTable
{
  public:
    /** Register a function; ranges must be disjoint. */
    void addFunction(FunctionInfo fn);

    /** Function covering `pc`, or nullptr if unknown. */
    const FunctionInfo *functionFor(std::uint64_t pc) const;

    /** Function name for `pc`, or "unknown". */
    std::string functionName(std::uint64_t pc) const;

    /** Source snippet for `pc`, or an empty string. */
    std::string sourceFor(std::uint64_t pc) const;

    /**
     * Render a few lines of synthetic x86-flavoured disassembly around
     * `pc`. Deterministic: same pc yields the same text.
     *
     * @param pc      anchor program counter
     * @param context number of instructions before/after the anchor
     */
    std::string assemblyAround(std::uint64_t pc, int context = 2) const;

    /** All registered functions in ascending PC order. */
    const std::vector<FunctionInfo> &functions() const
    {
        return functions_;
    }

  private:
    std::vector<FunctionInfo> functions_; // sorted by pc_begin
};

/**
 * Deterministically render a single synthetic instruction at `pc`.
 * Exposed for tests; used by SymbolTable::assemblyAround.
 */
std::string renderInstruction(std::uint64_t pc);

} // namespace cachemind::trace

#endif // CACHEMIND_TRACE_SYMBOLS_HH
