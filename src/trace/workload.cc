#include "trace/workload.hh"

#include "base/logging.hh"
#include "base/str.hh"
#include "trace/workload_models.hh"

namespace cachemind::trace {

const std::vector<WorkloadKind> &
allWorkloads()
{
    static const std::vector<WorkloadKind> kinds = {
        WorkloadKind::Astar, WorkloadKind::Lbm, WorkloadKind::Mcf,
        WorkloadKind::Milc, WorkloadKind::Microbench,
    };
    return kinds;
}

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Astar: return "astar";
      case WorkloadKind::Lbm: return "lbm";
      case WorkloadKind::Mcf: return "mcf";
      case WorkloadKind::Milc: return "milc";
      case WorkloadKind::Microbench: return "microbench";
    }
    return "?";
}

bool
workloadKindFromName(const std::string &name, WorkloadKind &out)
{
    const std::string lower = str::toLower(str::trim(name));
    for (WorkloadKind kind : allWorkloads()) {
        if (lower == workloadName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::unique_ptr<WorkloadModel>
makeWorkload(WorkloadKind kind)
{
    // Per-workload default seeds keep cross-workload streams decorrelated.
    return makeWorkload(kind,
                        0xcafef00dULL + static_cast<std::uint64_t>(kind));
}

std::unique_ptr<WorkloadModel>
makeWorkload(WorkloadKind kind, std::uint64_t seed)
{
    switch (kind) {
      case WorkloadKind::Astar: return makeAstarModel(seed);
      case WorkloadKind::Lbm: return makeLbmModel(seed);
      case WorkloadKind::Mcf: return makeMcfModel(seed);
      case WorkloadKind::Milc: return makeMilcModel(seed);
      case WorkloadKind::Microbench: return makeMicrobenchModel(seed);
    }
    CM_PANIC("unknown workload kind");
}

} // namespace cachemind::trace
