/**
 * @file
 * Internal factory declarations for the individual workload models.
 * Users should go through makeWorkload() in workload.hh.
 */

#ifndef CACHEMIND_TRACE_WORKLOAD_MODELS_HH
#define CACHEMIND_TRACE_WORKLOAD_MODELS_HH

#include <cstdint>
#include <memory>

#include "trace/workload.hh"

namespace cachemind::trace {

std::unique_ptr<WorkloadModel> makeAstarModel(std::uint64_t seed);
std::unique_ptr<WorkloadModel> makeLbmModel(std::uint64_t seed);
std::unique_ptr<WorkloadModel> makeMcfModel(std::uint64_t seed);
std::unique_ptr<WorkloadModel> makeMilcModel(std::uint64_t seed);
std::unique_ptr<WorkloadModel> makeMicrobenchModel(std::uint64_t seed);

/**
 * Microbenchmark with the §6.3 software fix applied: a
 * __builtin_prefetch-style access is issued `prefetch_ahead`
 * iterations before each pointer dereference (0 = unmodified source).
 */
std::unique_ptr<WorkloadModel>
makeMicrobenchModel(std::uint64_t seed, std::uint32_t prefetch_ahead);

} // namespace cachemind::trace

#endif // CACHEMIND_TRACE_WORKLOAD_MODELS_HH
