/**
 * @file
 * Core trace data types.
 *
 * A Trace is an ordered stream of memory accesses, each tagged with the
 * retiring instruction id, the program counter of the access, and the
 * byte address touched. Traces are produced by the synthetic workload
 * models (CPU-level) and by the hierarchy simulator (LLC-level streams
 * captured after L1/L2 filtering), mirroring the ChampSim/PARROT
 * pipeline the paper builds on.
 */

#ifndef CACHEMIND_TRACE_RECORD_HH
#define CACHEMIND_TRACE_RECORD_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cachemind::trace {

/** Kind of memory access carried by a trace record. */
enum class AccessType : std::uint8_t {
    Load,
    Store,
    Prefetch,
    Writeback,
};

/** Human-readable name for an access type. */
const char *accessTypeName(AccessType t);

/** One memory access event. */
struct TraceRecord
{
    /** Retire-order instruction id (monotone within a trace). */
    std::uint64_t instr_id = 0;
    /** Program counter of the memory instruction. */
    std::uint64_t pc = 0;
    /** Byte address accessed. */
    std::uint64_t address = 0;
    /** Load/store/prefetch/writeback. */
    AccessType type = AccessType::Load;
};

/**
 * An ordered memory-access stream plus identifying metadata.
 *
 * The `instructions` field records how many instructions the program
 * executed up to the last access, so downstream consumers (the core
 * model) can derive IPC from cache stall cycles.
 */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::string workload_name)
        : workload_(std::move(workload_name))
    {}

    /** Workload this trace came from (e.g. "mcf"). */
    const std::string &workload() const { return workload_; }
    void setWorkload(std::string name) { workload_ = std::move(name); }

    /** Append one record. */
    void
    push(const TraceRecord &r)
    {
        records_.push_back(r);
    }

    /** Append by fields. */
    void
    push(std::uint64_t instr_id, std::uint64_t pc, std::uint64_t addr,
         AccessType type = AccessType::Load)
    {
        records_.push_back(TraceRecord{instr_id, pc, addr, type});
    }

    std::size_t size() const { return records_.size(); }
    bool empty() const { return records_.empty(); }

    const TraceRecord &operator[](std::size_t i) const
    {
        return records_[i];
    }

    const std::vector<TraceRecord> &records() const { return records_; }

    auto begin() const { return records_.begin(); }
    auto end() const { return records_.end(); }

    /** Total instructions executed (>= last instr_id + 1). */
    std::uint64_t instructions() const { return instructions_; }
    void setInstructions(std::uint64_t n) { instructions_ = n; }

    void reserve(std::size_t n) { records_.reserve(n); }

  private:
    std::string workload_;
    std::vector<TraceRecord> records_;
    std::uint64_t instructions_ = 0;
};

/** Cache-line number for a byte address given a line size. */
constexpr std::uint64_t
lineOf(std::uint64_t address, std::uint64_t line_bytes = 64)
{
    return address / line_bytes;
}

} // namespace cachemind::trace

#endif // CACHEMIND_TRACE_RECORD_HH
