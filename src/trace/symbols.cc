#include "trace/symbols.hh"

#include <algorithm>
#include <sstream>

#include "base/logging.hh"
#include "base/random.hh"
#include "base/str.hh"

namespace cachemind::trace {

void
SymbolTable::addFunction(FunctionInfo fn)
{
    CM_ASSERT(fn.pc_begin < fn.pc_end, "empty function PC range");
    for (const auto &f : functions_) {
        const bool disjoint =
            fn.pc_end <= f.pc_begin || fn.pc_begin >= f.pc_end;
        if (!disjoint) {
            CM_PANIC("overlapping function ranges: ", f.name, " and ",
                     fn.name);
        }
    }
    functions_.push_back(std::move(fn));
    std::sort(functions_.begin(), functions_.end(),
              [](const FunctionInfo &a, const FunctionInfo &b) {
                  return a.pc_begin < b.pc_begin;
              });
}

const FunctionInfo *
SymbolTable::functionFor(std::uint64_t pc) const
{
    // functions_ is small (tens of entries); linear scan is fine and
    // keeps the structure trivially correct.
    for (const auto &f : functions_) {
        if (pc >= f.pc_begin && pc < f.pc_end)
            return &f;
    }
    return nullptr;
}

std::string
SymbolTable::functionName(std::uint64_t pc) const
{
    const FunctionInfo *f = functionFor(pc);
    return f ? f->name : std::string("unknown");
}

std::string
SymbolTable::sourceFor(std::uint64_t pc) const
{
    const FunctionInfo *f = functionFor(pc);
    return f ? f->source : std::string();
}

namespace {

/** Table of plausible instruction templates; chosen by PC hash. */
const char *const instr_templates[] = {
    "mov    -0x%x(%%rbp),%%eax",
    "mov    (%%rax,%%rbx,8),%%rdx",
    "lea    0x%x(%%rsi),%%rdi",
    "add    $0x%x,%%rax",
    "cmp    %%edx,%%eax",
    "test   %%al,%%al",
    "movsd  (%%r12,%%r13,8),%%xmm0",
    "mulsd  %%xmm1,%%xmm0",
    "mov    %%rax,0x%x(%%rsp)",
    "imul   $0x%x,%%rbx,%%rbx",
    "movzbl (%%rdi),%%eax",
    "sub    %%rcx,%%rdx",
};

const char *const branch_templates[] = {
    "jne    0x%x",
    "je     0x%x",
    "jmp    0x%x",
    "jle    0x%x",
};

std::string
formatTemplate(const char *tmpl, std::uint64_t imm)
{
    std::string out(tmpl);
    const std::string imm_hex = [imm] {
        std::ostringstream os;
        os << std::hex << (imm & 0xfff);
        return os.str();
    }();
    const auto pos = out.find("%x");
    if (pos != std::string::npos)
        out.replace(pos, 2, imm_hex);
    // Collapse the escaped register sigils used in the template table.
    return str::replaceAll(out, "%%", "%");
}

} // namespace

std::string
renderInstruction(std::uint64_t pc)
{
    const std::uint64_t h = splitMix64(pc * 0x9e3779b97f4a7c15ULL + 1);
    std::ostringstream os;
    os << std::hex << pc << ": ";
    if ((h & 0xff) < 0x28) {
        const auto idx = (h >> 8) %
            (sizeof(branch_templates) / sizeof(branch_templates[0]));
        const std::uint64_t target = pc + ((h >> 16) & 0x1ff) - 0x100;
        os << formatTemplate(branch_templates[idx], target);
    } else {
        const auto idx = (h >> 8) %
            (sizeof(instr_templates) / sizeof(instr_templates[0]));
        os << formatTemplate(instr_templates[idx], h >> 20);
    }
    return os.str();
}

std::string
SymbolTable::assemblyAround(std::uint64_t pc, int context) const
{
    std::ostringstream os;
    const FunctionInfo *f = functionFor(pc);
    if (f)
        os << "<" << f->name << ">:\n";
    // Synthetic encoding: instructions are 4 bytes apart.
    const std::uint64_t step = 4;
    for (int i = -context; i <= context; ++i) {
        const std::int64_t off = static_cast<std::int64_t>(i) *
                                 static_cast<std::int64_t>(step);
        const std::uint64_t cur =
            static_cast<std::uint64_t>(static_cast<std::int64_t>(pc) + off);
        if (f && (cur < f->pc_begin || cur >= f->pc_end))
            continue;
        os << (cur == pc ? " => " : "    ") << renderInstruction(cur)
           << "\n";
    }
    return os.str();
}

} // namespace cachemind::trace
