/**
 * @file
 * lbm (SPEC CPU2006 470.lbm) workload model.
 *
 * Behaviour reproduced: lattice-Boltzmann stream/collide sweeps over
 * two grids far larger than the LLC (pure streaming scans), tightly
 * interleaved with accesses to small boundary/obstacle structures that
 * have strong cross-sweep temporal reuse. This interleaving of scans
 * and reuse is the property the paper's lbm analysis highlights (scan
 * interference pushes useful lines out under recency policies, which
 * is why SHiP-style PC signatures win on lbm).
 */

#include "trace/workload_models.hh"

namespace cachemind::trace {
namespace {

class LbmModel : public WorkloadModel
{
  public:
    explicit LbmModel(std::uint64_t seed) : seed_(seed)
    {
        info_.name = "lbm";
        info_.description =
            "lbm (SPEC CPU2006 470.lbm): lattice-Boltzmann fluid "
            "dynamics. Stream/collide sweeps scan two multi-megabyte "
            "grids with little short-term reuse, interleaved with "
            "boundary-condition and obstacle structures that are "
            "reused every sweep; scans evict the reusable lines under "
            "recency-based policies.";
        info_.default_accesses = 240000;

        symbols_.addFunction({
            "LBM_performStreamCollide", 0x401d80, 0x401f00,
            "for (i = 0; i < SIZE; ++i) {\n"
            "    rho = SRC_C(i) + SRC_N(i) + SRC_S(i) + ...;\n"
            "    ux = (SRC_E(i) - SRC_W(i)) / rho;\n"
            "    DST_C(i) = (1-OMEGA)*SRC_C(i) + OMEGA*feq;\n"
            "}"});
        symbols_.addFunction({
            "LBM_handleInOutFlow", 0x401700, 0x401780,
            "for (i = 0; i < SLICE; ++i) {\n"
            "    if (TEST_FLAG(obstacle, i)) continue;\n"
            "    bc = boundary[i % NBC];\n"
            "    DST(i) = bc.rho * feq(i);\n"
            "}"});
        symbols_.addFunction({
            "LBM_swapGrids", 0x401a00, 0x401a40,
            "tmp = *srcGrid; *srcGrid = *dstGrid; *dstGrid = tmp;"});
    }

    Trace
    generate(std::uint64_t n_accesses) const override
    {
        Trace t("lbm");
        t.reserve(n_accesses);
        Rng rng(seed_);
        StreamBuilder sb(t, rng);

        const std::uint64_t src_base = 0x35e78000000ULL; // 24 MiB grid
        const std::uint64_t dst_base = 0x35e7a000000ULL; // 24 MiB grid
        const std::uint64_t grid_bytes = 24ULL << 20;
        const std::uint64_t bound_base = 0x35e7c000000ULL; // 768 KiB
        const std::uint64_t bound_bytes = 768ULL << 10;
        const std::uint64_t obst_base = 0x35e7d000000ULL;  // 256 KiB
        const std::uint64_t obst_bytes = 256ULL << 10;

        const std::uint64_t cell = 152;  // 19 doubles per cell
        const std::uint64_t plane = 1ULL << 16;

        std::uint64_t pos = 0;
        std::uint64_t sweep_bytes = 0;

        while (t.size() + 10 < n_accesses) {
            const std::uint64_t base = pos % grid_bytes;

            // Stream reads: centre + a few neighbour distributions.
            sb.access(0x401dc9, src_base + base);
            sb.access(0x401dc9, src_base + (base + cell) % grid_bytes);
            sb.access(0x401dd4,
                      src_base + (base + plane) % grid_bytes);
            if (rng.nextBool(0.6)) {
                sb.access(0x401dd4,
                          src_base + (base + grid_bytes - plane) %
                                         grid_bytes);
            }

            // Collide + stream write to the destination grid.
            sb.access(0x401e31, dst_base + base, AccessType::Store);
            if (rng.nextBool(0.4)) {
                sb.access(0x401e4c,
                          dst_base + (base + cell) % grid_bytes,
                          AccessType::Store);
            }

            // Interleaved boundary handling: strong cross-sweep reuse.
            if (rng.nextBool(0.45)) {
                sb.access(0x40170a,
                          bound_base + (base % bound_bytes));
                sb.access(0x401722, obst_base + (base % obst_bytes));
            }

            pos += cell;
            sweep_bytes += cell;
            if (sweep_bytes >= grid_bytes / 6) {
                // Partial sweep boundary: grid swap touchpoint.
                sweep_bytes = 0;
                sb.access(0x401a10, src_base);
                sb.access(0x401a18, dst_base, AccessType::Store);
            }
        }
        return t;
    }

  private:
    std::uint64_t seed_;
};

} // namespace

std::unique_ptr<WorkloadModel>
makeLbmModel(std::uint64_t seed)
{
    return std::make_unique<LbmModel>(seed);
}

} // namespace cachemind::trace
