/**
 * @file
 * mcf (SPEC CPU2006 429.mcf) workload model.
 *
 * Behaviour reproduced: network-simplex minimum-cost flow with a
 * pricing scan over a huge arc array (streaming, near-zero reuse: the
 * paper's prime bypass candidates), pointer-chasing node potentials
 * (random, high miss), and a small hot basket structure with high hit
 * rate (PC 0x4037ba, the paper's semantic-analysis example). Overall
 * LLC miss rate is very high, matching the ~95% figure in the paper's
 * metadata example.
 */

#include "trace/workload_models.hh"

namespace cachemind::trace {
namespace {

class McfModel : public WorkloadModel
{
  public:
    explicit McfModel(std::uint64_t seed) : seed_(seed)
    {
        info_.name = "mcf";
        info_.description =
            "mcf (SPEC CPU2006 429.mcf): network-simplex minimum-cost "
            "flow. The pricing loop streams a multi-hundred-megabyte "
            "arc array with essentially no reuse, dereferences node "
            "potentials through pointers with random placement, and "
            "maintains a small, intensely reused candidate basket; LLC "
            "miss rate is dominated by capacity misses.";
        info_.default_accesses = 180000;

        symbols_.addFunction({
            "primal_bea_mpp", 0x403780, 0x403880,
            "for (; arc < stop_arcs; arc += nr_group) {\n"
            "    if (arc->ident > BASIC) {\n"
            "        red_cost = bea_compute_red_cost(arc);\n"
            "        if (bea_is_dual_infeasible(arc, red_cost))\n"
            "            basket[++basket_size]->a = arc;\n"
            "    }\n"
            "}"});
        symbols_.addFunction({
            "refresh_potential", 0x402e80, 0x402f40,
            "while (node != root) {\n"
            "    if (node->orientation == UP)\n"
            "        node->potential =\n"
            "            node->basic_arc->cost + node->pred->potential;\n"
            "    node = node->child ? node->child : node->sibling;\n"
            "}"});
        symbols_.addFunction({
            "insert_new_arc", 0x401370, 0x4013c0,
            "pos = cmp_deg(new_arcs, arc);\n"
            "queue[pos] = arc;\n"
            "queue[pos]->flow = 0;"});
        symbols_.addFunction({
            "price_out_impl", 0x401d60, 0x401dc0,
            "for (arcin = first; arcin; arcin = arcin->next_in) {\n"
            "    head = arcin->head;\n"
            "    latest[head->number % K] = arcin;\n"
            "}"});
    }

    Trace
    generate(std::uint64_t n_accesses) const override
    {
        Trace t("mcf");
        t.reserve(n_accesses);
        Rng rng(seed_);
        StreamBuilder sb(t, rng);

        const std::uint64_t arcs_base = 0x1b738000000ULL; // 192 MiB
        const std::uint64_t arcs_bytes = 192ULL << 20;
        const std::uint64_t nodes_base = 0x1b748000000ULL; // 48 MiB
        const std::uint64_t nodes_bytes = 48ULL << 20;
        const std::uint64_t basket_base = 0x1b750000000ULL; // 192 KiB
        const std::uint64_t basket_bytes = 192ULL << 10;
        const std::uint64_t tree_base = 0x1b754000000ULL;  // 24 MiB
        const std::uint64_t tree_bytes = 24ULL << 20;

        const std::uint64_t arc_stride = 192; // one arc record
        std::uint64_t arc_pos = 0;
        std::uint64_t node = rng.nextBelow(nodes_bytes);

        while (t.size() + 8 < n_accesses) {
            // Pricing scan: streaming over the arc array. Near-zero
            // reuse; the paper's top bypass candidate (0x4037aa).
            sb.access(0x4037aa, arcs_base + (arc_pos % arcs_bytes));
            arc_pos += arc_stride * (3 + rng.nextBelow(3));

            // Node-potential pointer chase (random placement).
            node = splitMix64(node * 2654435761ULL + arc_pos) %
                   nodes_bytes;
            sb.access(0x402ea8, nodes_base + node);
            if (rng.nextBool(0.5)) {
                sb.access(0x402ec1,
                          nodes_base + ((node + 64) % nodes_bytes));
            }

            // Basket updates: small hot region, high hit rate
            // (0x4037ba, the "why is this PC's hit rate high" PC).
            sb.access(0x4037ba,
                      basket_base + (rng.nextBelow(basket_bytes / 64)) *
                                        64);
            if (rng.nextBool(0.6)) {
                sb.access(0x4037ca,
                          basket_base + rng.nextBelow(basket_bytes),
                          AccessType::Store);
            }

            // Occasional spanning-tree updates: medium region, low
            // reuse; secondary bypass candidates 0x401380/0x40138f.
            if (rng.nextBool(0.30)) {
                const std::uint64_t tpos = rng.nextBelow(tree_bytes);
                sb.access(0x401380, tree_base + tpos);
                sb.access(0x40138f, tree_base + (tpos ^ 0x40),
                          AccessType::Store);
            }

            // price_out scan with modest spatial locality.
            if (rng.nextBool(0.25)) {
                sb.access(0x401d9b,
                          arcs_base +
                              ((arc_pos + 4096) % arcs_bytes));
            }
        }
        return t;
    }

  private:
    std::uint64_t seed_;
};

} // namespace

std::unique_ptr<WorkloadModel>
makeMcfModel(std::uint64_t seed)
{
    return std::make_unique<McfModel>(seed);
}

} // namespace cachemind::trace
