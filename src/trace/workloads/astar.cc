/**
 * @file
 * astar (SPEC CPU2006 473.astar) workload model.
 *
 * Behaviour reproduced: graph path-finding with a wave of map-cell
 * reads (moderate spatial locality, working set larger than the LLC),
 * a heavily reused open-list/priority-queue region, region bookkeeping
 * writes, and a power-of-two-strided bucket table that concentrates on
 * a few cache sets (the source of the "hot set" phenomenon that the
 * set-hotness use case detects).
 */

#include "trace/workload_models.hh"

namespace cachemind::trace {
namespace {

class AstarModel : public WorkloadModel
{
  public:
    explicit AstarModel(std::uint64_t seed) : seed_(seed)
    {
        info_.name = "astar";
        info_.description =
            "astar (SPEC CPU2006 473.astar): 2D path-finding over a "
            "region map. A search wave dereferences map cells with "
            "moderate spatial locality over a working set larger than "
            "the LLC, while the open list and a small bucket table are "
            "reused intensely; power-of-two strides concentrate bucket "
            "accesses on a few cache sets.";
        info_.default_accesses = 230000;

        symbols_.addFunction({
            "_ZN7way2obj11createwayarERP6pointtRi", 0x409200, 0x409300,
            "for (dir = 0; dir < 8; ++dir) {\n"
            "    np = p + dirstep[dir];\n"
            "    if (map[np].region == reg && !map[np].closed)\n"
            "        waymap[np].dir = dir;\n"
            "}"});
        symbols_.addFunction({
            "_ZN6wayobj10makebound2EPiiS0_", 0x409080, 0x409100,
            "for (i = 0; i < nbound; ++i) {\n"
            "    idx = boundar[i];\n"
            "    bound2ar[nbound2++] = idx + mapeffstep[dir];\n"
            "}"});
        symbols_.addFunction({
            "_ZN9regwayobj10makebound2ERP9flexarrayIP6regobjES5_",
            0x409500, 0x409580,
            "for (i = 0; i < bound.elemqu; ++i) {\n"
            "    rp = bound[i];\n"
            "    for (j = 0; j < rp->neighborqu; ++j)\n"
            "        addtobound(rp->neighborar[j]);\n"
            "}"});
        symbols_.addFunction({
            "mainSimpleSort", 0x405800, 0x405900,
            "while (lo <= hi) {\n"
            "    v = bucket[ptr[lo] & mask];\n"
            "    if (v.tag) swap(ptr[lo], ptr[hi]);\n"
            "    ++lo;\n"
            "}"});
    }

    Trace
    generate(std::uint64_t n_accesses) const override
    {
        Trace t("astar");
        t.reserve(n_accesses);
        Rng rng(seed_);
        StreamBuilder sb(t, rng);

        // Memory regions (byte addresses; 64B lines downstream).
        const std::uint64_t map_base = 0x2bfd4000000ULL;   // 8 MiB map
        const std::uint64_t map_cells = 8ULL << 20;
        const std::uint64_t queue_base = 0x2bfd5000000ULL; // 384 KiB
        const std::uint64_t queue_bytes = 384ULL << 10;
        const std::uint64_t region_base = 0x2bfd6000000ULL; // 2 MiB
        const std::uint64_t region_bytes = 2ULL << 20;
        const std::uint64_t bucket_base = 0x2bfd8000000ULL;
        // Bucket entries strided by 128 KiB: every entry maps to the
        // same LLC set group -> a handful of very hot sets.
        const std::uint64_t bucket_stride = 128ULL << 10;
        const std::uint64_t bucket_entries = 48;

        const std::uint64_t row = 2048; // map row length in bytes

        std::uint64_t wave = rng.nextBelow(map_cells);
        std::uint64_t q_head = 0;
        std::uint64_t q_tail = 0;

        while (t.size() + 8 < n_accesses) {
            // Pop the open list (hot, cyclic reuse).
            sb.access(0x409538, queue_base + (q_head % queue_bytes));
            q_head += 16;

            // Dereference the popped map cell and its neighbours:
            // wave-front locality with occasional long jumps.
            if (rng.nextBool(0.02))
                wave = rng.nextBelow(map_cells);
            const std::uint64_t cell =
                map_base + (wave % map_cells);
            sb.access(0x409270, cell);
            sb.access(0x409270, cell + row);
            if (rng.nextBool(0.7))
                sb.access(0x409228, cell + 64);
            if (rng.nextBool(0.5))
                sb.access(0x409228, cell - row);
            // Advance the wave front; mostly local steps.
            wave += 64 + rng.nextBelow(3) * row;

            // Push discovered cells (bounded queue write).
            sb.access(0x4090c3, queue_base + (q_tail % queue_bytes),
                      AccessType::Store);
            q_tail += 16;

            // Region bookkeeping: medium-size array, moderate reuse.
            sb.access(0x4090e0,
                      region_base + rng.nextBelow(region_bytes),
                      AccessType::Store);

            // Bucket table: power-of-two stride, conflict-heavy.
            const std::uint64_t b = rng.nextBelow(bucket_entries);
            sb.access(0x405832, bucket_base + b * bucket_stride);
            if (rng.nextBool(0.35)) {
                sb.access(0x405844, bucket_base + b * bucket_stride + 8,
                          AccessType::Store);
            }
        }
        return t;
    }

  private:
    std::uint64_t seed_;
};

} // namespace

std::unique_ptr<WorkloadModel>
makeAstarModel(std::uint64_t seed)
{
    return std::make_unique<AstarModel>(seed);
}

} // namespace cachemind::trace
