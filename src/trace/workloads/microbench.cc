/**
 * @file
 * Pointer-chasing microbenchmark (§6.3 software-prefetch use case).
 *
 * One dominant load PC (0x400512) chases a random cycle through a
 * pointer array about twice the LLC, yielding a high miss rate that a
 * software prefetch at that PC removes. Minor PCs (loop control, sum
 * accumulation, initialisation stores) provide the background traffic
 * so the dominant-miss-PC identification is a real search problem.
 */

#include "trace/workload_models.hh"

namespace cachemind::trace {
namespace {

class MicrobenchModel : public WorkloadModel
{
  public:
    explicit MicrobenchModel(std::uint64_t seed,
                             std::uint32_t prefetch_ahead = 0)
        : seed_(seed), prefetch_ahead_(prefetch_ahead)
    {
        info_.name = "microbench";
        info_.description =
            "Pointer-chasing microbenchmark: a random cycle through a "
            "pointer array roughly twice the LLC capacity is walked by "
            "a single dominant load (the deliberately 'unknown' PC of "
            "the software-prefetch use case); loop control and a sum "
            "accumulator provide cache-friendly background accesses.";
        info_.default_accesses = 300000;

        symbols_.addFunction({
            "chase", 0x400500, 0x400540,
            "while (n--) {\n"
            "    p = (node *)p->next;   /* dominant miss PC */\n"
            "    sum += p->value;\n"
            "}"});
        symbols_.addFunction({
            "main", 0x400400, 0x400500,
            "for (iter = 0; iter < ITERS; ++iter)\n"
            "    sum = chase(head, N);\n"
            "printf(\"%lu\\n\", sum);"});
        symbols_.addFunction({
            "init_ring", 0x400700, 0x400740,
            "for (i = 0; i < N; ++i)\n"
            "    arr[perm[i]].next = &arr[perm[(i + 1) % N]];"});
    }

    Trace
    generate(std::uint64_t n_accesses) const override
    {
        Trace t("microbench");
        t.reserve(n_accesses);
        Rng rng(seed_);
        StreamBuilder sb(t, rng);

        const std::uint64_t arr_base = 0x7f4e2000000ULL; // 4 MiB ring
        const std::uint64_t arr_bytes = 4ULL << 20;
        const std::uint64_t nodes = arr_bytes / 64;
        const std::uint64_t stack_base = 0x7ffd1000000ULL;

        // Initialisation phase: sequential stores building the ring.
        const std::uint64_t init_nodes =
            std::min<std::uint64_t>(nodes, n_accesses / 12);
        for (std::uint64_t i = 0; i < init_nodes; ++i) {
            sb.access(0x400701, arr_base + i * 64, AccessType::Store);
            if ((i & 7) == 0)
                sb.access(0x400709, stack_base + 0x40);
        }

        // Chase phase: pseudo-random cycle via a multiplicative step.
        // The index recurrence is position-deterministic, which is
        // exactly why the paper's software fix works: a prefetch can
        // run `prefetch_ahead_` iterations in front of the demand
        // stream.
        auto step = [nodes](std::uint64_t i) {
            return (i * 2654435761ULL + 12345) % nodes;
        };
        std::uint64_t idx = 1;
        std::uint64_t ahead = 1;
        for (std::uint32_t k = 0; k < prefetch_ahead_; ++k)
            ahead = step(ahead);
        while (t.size() + 5 < n_accesses) {
            idx = step(idx);
            if (prefetch_ahead_ > 0) {
                ahead = step(ahead);
                sb.access(0x400520, arr_base + ahead * 64,
                          AccessType::Prefetch);
            }
            sb.access(0x400512, arr_base + idx * 64);
            // Accumulator + loop counter: same stack lines, hits.
            sb.access(0x40052a, stack_base + 0x80);
            if (rng.nextBool(0.25))
                sb.access(0x400444, stack_base + 0xc0);
        }
        return t;
    }

  private:
    std::uint64_t seed_;
    std::uint32_t prefetch_ahead_;
};

} // namespace

std::unique_ptr<WorkloadModel>
makeMicrobenchModel(std::uint64_t seed)
{
    return std::make_unique<MicrobenchModel>(seed);
}

std::unique_ptr<WorkloadModel>
makeMicrobenchModel(std::uint64_t seed, std::uint32_t prefetch_ahead)
{
    return std::make_unique<MicrobenchModel>(seed, prefetch_ahead);
}

} // namespace cachemind::trace
