/**
 * @file
 * milc (SPEC CPU2006 433.milc) workload model.
 *
 * Behaviour reproduced: lattice-QCD su3 matrix sweeps with highly
 * regular strides, so most PCs exhibit near-constant reuse distances
 * ("stable" PCs with low ETR variance — exactly what the Mockingjay
 * use case mines), plus one gather PC with a random neighbour
 * permutation whose reuse distance is noisy (the "high variance"
 * class in Figure 10).
 */

#include "trace/workload_models.hh"

namespace cachemind::trace {
namespace {

class MilcModel : public WorkloadModel
{
  public:
    explicit MilcModel(std::uint64_t seed) : seed_(seed)
    {
        info_.name = "milc";
        info_.description =
            "milc (SPEC CPU2006 433.milc): lattice QCD with su3 "
            "matrix-vector sweeps. Field accesses are strided and "
            "periodic, so per-PC reuse distances are nearly constant "
            "(predictable ETR); a neighbour-gather PC with a random "
            "permutation provides the contrasting high-variance class.";
        info_.default_accesses = 400000;

        symbols_.addFunction({
            "mult_su3_na", 0x4184a0, 0x418560,
            "for (i = 0; i < 3; ++i)\n"
            "    for (j = 0; j < 3; ++j) {\n"
            "        c->e[i][j] = cmul(a->e[i][0], b->e[j][0]);\n"
            "        c->e[i][j] += cmul(a->e[i][1], b->e[j][1]);\n"
            "    }"});
        symbols_.addFunction({
            "scalar_mult_add_su3_vector", 0x413900, 0x413980,
            "for (i = 0; i < 3; ++i) {\n"
            "    c->c[i].real = a->c[i].real + s * b->c[i].real;\n"
            "    c->c[i].imag = a->c[i].imag + s * b->c[i].imag;\n"
            "}"});
        symbols_.addFunction({
            "compute_gen_staple", 0x417f00, 0x417f80,
            "mult_su3_na(link[dir], staple[nu], &tmat);\n"
            "add_su3_matrix(&staple_sum, &tmat, &staple_sum);"});
    }

    Trace
    generate(std::uint64_t n_accesses) const override
    {
        Trace t("milc");
        t.reserve(n_accesses);
        Rng rng(seed_);
        StreamBuilder sb(t, rng);

        const std::uint64_t links_base = 0x3528c000000ULL; // 1 MiB
        const std::uint64_t links_bytes = 1ULL << 20;
        const std::uint64_t srcv_base = 0x3528d000000ULL;  // 1.5 MiB
        const std::uint64_t srcv_bytes = 1024ULL << 10;
        const std::uint64_t dstv_base = 0x3528e000000ULL;  // 1.5 MiB
        const std::uint64_t dstv_bytes = 1024ULL << 10;
        const std::uint64_t staple_base = 0x3528f000000ULL; // 2 MiB
        const std::uint64_t staple_bytes = 2ULL << 20;
        const std::uint64_t gather_base = 0x35290000000ULL; // 12 MiB
        const std::uint64_t gather_bytes = 12ULL << 20;

        const std::uint64_t mat = 144; // su3 matrix bytes
        const std::uint64_t vec = 48;  // su3 vector bytes

        std::uint64_t site = 0;
        std::uint64_t phase = 0;

        while (t.size() + 8 < n_accesses) {
            const std::uint64_t l = (site * mat) % links_bytes;
            const std::uint64_t v = (site * vec) % srcv_bytes;

            // Regular strided sweep: stable reuse distances.
            sb.access(0x4184b0, links_base + l);
            sb.access(0x4184c0, links_base + (l + mat) % links_bytes);
            sb.access(0x413930, srcv_base + v);
            sb.access(0x41391c, dstv_base + (site * vec) % dstv_bytes,
                      AccessType::Store);

            // Periodic staple phase: alternating footprint (medium
            // reuse-distance variance).
            if ((phase & 1) == 0) {
                sb.access(0x417f58,
                          staple_base + (site * mat) % (staple_bytes / 2));
            } else {
                sb.access(0x417f58,
                          staple_base + staple_bytes / 2 +
                              (site * mat) % (staple_bytes / 2));
            }

            // Random-permutation neighbour gather over its own large
            // field: noisy, unpredictable reuse distances (the
            // high-variance class of Figure 10).
            if (rng.nextBool(0.5)) {
                const std::uint64_t g =
                    splitMix64(site * 0x9e37ULL + phase) % gather_bytes;
                sb.access(0x413948, gather_base + g);
            }

            // Accumulator matrix with short reuse (register-like).
            sb.access(0x418502, dstv_base + (site % 8) * 64);

            ++site;
            if (site * vec >= srcv_bytes) {
                site = 0;
                ++phase;
            }
        }
        return t;
    }

  private:
    std::uint64_t seed_;
};

} // namespace

std::unique_ptr<WorkloadModel>
makeMilcModel(std::uint64_t seed)
{
    return std::make_unique<MilcModel>(seed);
}

} // namespace cachemind::trace
