/**
 * @file
 * Synthetic workload models.
 *
 * The paper evaluates on SPEC CPU2006-derived traces (astar, lbm, mcf,
 * plus milc for the Mockingjay use case and a pointer-chasing
 * microbenchmark for the software-prefetch use case). Those traces are
 * not redistributable, so each workload here is a generative model of
 * the benchmark's memory behaviour — the reuse/recency structure that
 * CacheMind's analyses depend on is reproduced, as documented per
 * workload in DESIGN.md §2.
 */

#ifndef CACHEMIND_TRACE_WORKLOAD_HH
#define CACHEMIND_TRACE_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/random.hh"
#include "trace/record.hh"
#include "trace/symbols.hh"

namespace cachemind::trace {

/** The workloads CacheMind ships models for. */
enum class WorkloadKind {
    Astar,
    Lbm,
    Mcf,
    Milc,
    Microbench,
};

/** All workload kinds in canonical order. */
const std::vector<WorkloadKind> &allWorkloads();

/** Canonical lower-case name ("astar", "lbm", ...). */
const char *workloadName(WorkloadKind kind);

/** Parse a workload name (case-insensitive); returns false on failure. */
bool workloadKindFromName(const std::string &name, WorkloadKind &out);

/** Identifying metadata for a workload model. */
struct WorkloadInfo
{
    /** Canonical name, e.g. "mcf". */
    std::string name;
    /** Human-readable description used in retrieval context bundles. */
    std::string description;
    /** CPU-level access count that generate() produces by default. */
    std::uint64_t default_accesses = 0;
};

/**
 * Base class for workload models.
 *
 * Models are deterministic: generate() always produces the same trace
 * for the same (seed, n) pair.
 */
class WorkloadModel
{
  public:
    virtual ~WorkloadModel() = default;

    const WorkloadInfo &info() const { return info_; }
    const SymbolTable &symbols() const { return symbols_; }

    /** Produce a trace with approximately `n_accesses` records. */
    virtual Trace generate(std::uint64_t n_accesses) const = 0;

    /** Produce a trace of the model's default length. */
    Trace
    generate() const
    {
        return generate(info_.default_accesses);
    }

  protected:
    WorkloadInfo info_;
    SymbolTable symbols_;
};

/**
 * Helper that appends accesses to a trace while advancing a synthetic
 * instruction counter (a few non-memory instructions between memory
 * operations, drawn deterministically).
 */
class StreamBuilder
{
  public:
    StreamBuilder(Trace &t, Rng &rng, std::uint64_t min_gap = 2,
                  std::uint64_t max_gap = 6)
        : trace_(t), rng_(rng), min_gap_(min_gap), max_gap_(max_gap)
    {}

    /** Record one access at `pc` to `addr`. */
    void
    access(std::uint64_t pc, std::uint64_t addr,
           AccessType type = AccessType::Load)
    {
        instr_id_ += 1 + rng_.nextBelow(max_gap_ - min_gap_ + 1) +
                     min_gap_ - 1;
        trace_.push(instr_id_, pc, addr, type);
        trace_.setInstructions(instr_id_ + 1);
    }

    std::uint64_t instrId() const { return instr_id_; }

  private:
    Trace &trace_;
    Rng &rng_;
    std::uint64_t min_gap_;
    std::uint64_t max_gap_;
    std::uint64_t instr_id_ = 0;
};

/** Construct the model for `kind` with a deterministic default seed. */
std::unique_ptr<WorkloadModel> makeWorkload(WorkloadKind kind);

/** Construct the model for `kind` with an explicit seed. */
std::unique_ptr<WorkloadModel> makeWorkload(WorkloadKind kind,
                                            std::uint64_t seed);

} // namespace cachemind::trace

#endif // CACHEMIND_TRACE_WORKLOAD_HH
