#include "trace/record.hh"

namespace cachemind::trace {

const char *
accessTypeName(AccessType t)
{
    switch (t) {
      case AccessType::Load: return "LOAD";
      case AccessType::Store: return "STORE";
      case AccessType::Prefetch: return "PREFETCH";
      case AccessType::Writeback: return "WRITEBACK";
    }
    return "?";
}

} // namespace cachemind::trace
