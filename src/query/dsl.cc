#include "query/dsl.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/stats_util.hh"
#include "base/str.hh"

namespace cachemind::query {

const char *
dslOpName(DslOp op)
{
    switch (op) {
      case DslOp::SelectRows: return "select_rows";
      case DslOp::CountRows: return "count_rows";
      case DslOp::MissRate: return "miss_rate";
      case DslOp::HitCount: return "hit_count";
      case DslOp::MeanField: return "mean";
      case DslOp::SumField: return "sum";
      case DslOp::MinField: return "min";
      case DslOp::MaxField: return "max";
      case DslOp::StdField: return "std";
      case DslOp::UniquePcs: return "unique_pcs";
      case DslOp::UniqueSets: return "unique_sets";
      case DslOp::PerPcStats: return "per_pc_stats";
      case DslOp::PerSetStats: return "per_set_stats";
      case DslOp::Metadata: return "metadata";
    }
    return "?";
}

const char *
dslFieldName(DslField field)
{
    switch (field) {
      case DslField::ReuseDistance:
        return "accessed_address_reuse_distance_numeric";
      case DslField::EvictedReuseDistance:
        return "evicted_address_reuse_distance_numeric";
      case DslField::Recency:
        return "accessed_address_recency_numeric";
    }
    return "?";
}

std::string
renderProgramAsPython(const DslProgram &prog)
{
    std::ostringstream os;
    os << "df = loaded_data[\"" << prog.trace_key << "\"][\"data_frame\"]\n";
    std::vector<std::string> conds;
    if (prog.pc) {
        conds.push_back("df.program_counter == \"" + str::hex(*prog.pc) +
                        "\"");
    }
    if (prog.address) {
        conds.push_back("df.memory_address == \"" +
                        str::hex(*prog.address) + "\"");
    }
    if (prog.set_id) {
        conds.push_back("df.cache_set_id == " +
                        std::to_string(*prog.set_id));
    }
    if (!conds.empty())
        os << "df = df[" << str::join(conds, " & ") << "]\n";
    switch (prog.op) {
      case DslOp::SelectRows:
        os << "result = df.head(" << prog.limit << ").to_string()\n";
        break;
      case DslOp::CountRows:
        os << "result = f\"count = {len(df)}\"\n";
        break;
      case DslOp::MissRate:
        os << "result = f\"miss rate = "
              "{100.0 * df.is_miss.mean():.2f}%\"\n";
        break;
      case DslOp::HitCount:
        os << "result = f\"hits = {(1 - df.is_miss).sum()}\"\n";
        break;
      case DslOp::MeanField:
      case DslOp::SumField:
      case DslOp::MinField:
      case DslOp::MaxField:
      case DslOp::StdField:
        os << "xs = df[\"" << dslFieldName(prog.field)
           << "\"]; xs = xs[xs >= 0]\n"
           << "result = f\"" << dslOpName(prog.op) << " = {xs."
           << dslOpName(prog.op) << "()}\"\n";
        break;
      case DslOp::UniquePcs:
        os << "result = sorted(df.program_counter.unique())\n";
        break;
      case DslOp::UniqueSets:
        os << "result = sorted(df.cache_set_id.unique())\n";
        break;
      case DslOp::PerPcStats:
        os << "result = df.groupby(\"program_counter\").agg("
              "miss_rate=(\"is_miss\", \"mean\"), "
              "reuse=(\"accessed_address_reuse_distance_numeric\", "
              "\"mean\"))\n";
        break;
      case DslOp::PerSetStats:
        os << "result = df.groupby(\"cache_set_id\").agg("
              "hits=(\"is_miss\", lambda m: (1 - m).sum()))\n";
        break;
      case DslOp::Metadata:
        os << "result = loaded_data[\"" << prog.trace_key
           << "\"][\"metadata\"]\n";
        break;
    }
    return os.str();
}

namespace {

std::int64_t
fieldValue(const db::TraceTable &t, std::size_t i, DslField field)
{
    switch (field) {
      case DslField::ReuseDistance: return t.reuseDistanceAt(i);
      case DslField::EvictedReuseDistance:
        return t.evictedReuseDistanceAt(i);
      case DslField::Recency: return t.recencyAt(i);
    }
    return db::kNoValue;
}

/**
 * Final aggregate over the collected finite samples — shared by both
 * execution modes so the arithmetic (and therefore every output bit)
 * is identical by construction.
 */
void
aggregateSamples(const std::vector<double> &xs, const DslProgram &prog,
                 DslResult &res)
{
    if (xs.empty()) {
        res.error = "no finite samples for field " +
                    std::string(dslFieldName(prog.field));
        return;
    }
    double out = 0.0;
    switch (prog.op) {
      case DslOp::MeanField: out = stats::mean(xs); break;
      case DslOp::SumField:
        for (const double x : xs)
            out += x;
        break;
      case DslOp::MinField:
        out = *std::min_element(xs.begin(), xs.end());
        break;
      case DslOp::MaxField:
        out = *std::max_element(xs.begin(), xs.end());
        break;
      case DslOp::StdField: out = stats::stdev(xs); break;
      default: break;
    }
    res.number = out;
    res.ok = true;
}

bool
isAggregateOp(DslOp op)
{
    return op == DslOp::MeanField || op == DslOp::SumField ||
           op == DslOp::MinField || op == DslOp::MaxField ||
           op == DslOp::StdField;
}

} // namespace

DslResult
Interpreter::run(const DslProgram &prog) const
{
    ExecScratch scratch;
    return run(prog, scratch);
}

DslResult
Interpreter::run(const DslProgram &prog, ExecScratch &scratch) const
{
    DslResult res;
    const db::TraceEntry *entry = shards_.find(prog.trace_key);
    if (!entry) {
        res.error = "no trace named '" + prog.trace_key +
                    "' in the database";
        return res;
    }
    const db::TraceTable &table = entry->table;

    if (prog.op == DslOp::Metadata) {
        res.ok = true;
        res.text = entry->metadata;
        return res;
    }
    if (prog.op == DslOp::UniquePcs) {
        res.ok = true;
        // Indexed: the build-time sorted listing; scan: re-sort.
        res.values = mode_ == ExecMode::Indexed ? table.uniquePcs()
                                                : table.uniquePcsScan();
        return res;
    }
    if (prog.op == DslOp::UniqueSets) {
        res.ok = true;
        if (mode_ == ExecMode::Indexed) {
            for (const auto s : table.uniqueSets())
                res.values.push_back(s);
        } else {
            for (const auto s : table.uniqueSetsScan())
                res.values.push_back(s);
        }
        return res;
    }
    if (prog.op == DslOp::PerPcStats || prog.op == DslOp::PerSetStats) {
        const db::StatsExpert *expert = shards_.statsFor(prog.trace_key);
        res.ok = true;
        if (prog.op == DslOp::PerPcStats) {
            if (prog.pc) {
                if (auto ps = expert->pcStats(*prog.pc))
                    res.pc_stats.push_back(*ps);
            } else {
                res.pc_stats = expert->allPcStats();
            }
        } else {
            if (prog.set_id) {
                if (auto ss = expert->setStats(*prog.set_id))
                    res.set_stats.push_back(*ss);
            } else {
                res.set_stats = expert->allSetStats();
            }
        }
        return res;
    }

    return mode_ == ExecMode::Indexed
               ? runFilteredIndexed(*entry, prog, scratch)
               : runFilteredScan(*entry, prog, scratch);
}

/**
 * Row-filtered operations on the postings index. Counting aggregates
 * (CountRows/HitCount/MissRate) over zero or one filter key are
 * served straight from precomputed counters without touching a single
 * row. One filter dimension decodes the key's chunked postings into
 * the scratch buffer; two or more intersect the two smallest lists
 * through the adaptive kernels (galloping / SIMD merge / bitmap AND)
 * and walk the result with the residual filter checked against the
 * columns. Postings are ascending, so the visit order — and hence
 * every output bit — matches the reference scan.
 */
DslResult
Interpreter::runFilteredIndexed(const db::TraceEntry &entry,
                                const DslProgram &prog,
                                ExecScratch &scratch) const
{
    const db::TraceTable &table = entry.table;
    const db::TraceIndex *idx_ptr = table.indexOrFallback();
    if (!idx_ptr) {
        // Index build failed for this shard: answer from the
        // reference scan — identical bytes, just slower.
        return runFilteredScan(entry, prog, scratch);
    }
    DslResult res;
    const db::TraceIndex &idx = *idx_ptr;
    const std::size_t n = table.size();

    // Resolve filter keys; any absent key means zero matches.
    bool absent = false;
    std::optional<std::uint32_t> pc_id, addr_id;
    if (prog.pc) {
        pc_id = table.pcIdOf(*prog.pc);
        absent |= !pc_id;
    }
    if (prog.address) {
        addr_id = table.addrIdOf(*prog.address);
        absent |= !addr_id;
    }
    if (prog.set_id && !absent && idx.setCounts(*prog.set_id) == nullptr)
        absent = true;

    const int dims = (prog.pc ? 1 : 0) + (prog.address ? 1 : 0) +
                     (prog.set_id ? 1 : 0);

    // Scan-equivalent instrumentation: rows actually walked.
    std::size_t visited = 0;

    // Present postings lists, smallest first: lists[0] is the primary
    // walk list; with two or more dimensions, lists[0] and lists[1]
    // feed the kernel intersection. Counting ops at <= 1 dimension
    // are pure counter reads — skip the gathering on that hot path.
    const bool counting_op = prog.op == DslOp::CountRows ||
                             prog.op == DslOp::MissRate ||
                             prog.op == DslOp::HitCount;
    db::PostingsList lists[3];
    int num_lists = 0;
    if (!absent && dims > 0 && !(counting_op && dims <= 1)) {
        if (pc_id)
            lists[num_lists++] = idx.pcPostings(*pc_id);
        if (addr_id)
            lists[num_lists++] = idx.addrPostings(*addr_id);
        if (prog.set_id)
            lists[num_lists++] = idx.setPostings(*prog.set_id);
        std::sort(lists, lists + num_lists,
                  [](const db::PostingsList &a,
                     const db::PostingsList &b) {
                      return a.size() < b.size();
                  });
    }

    const auto rowMatches = [&](std::size_t i) {
        if (prog.pc && table.pcAt(i) != *prog.pc)
            return false;
        if (prog.address && table.addressAt(i) != *prog.address)
            return false;
        if (prog.set_id && table.setAt(i) != *prog.set_id)
            return false;
        return true;
    };

    // Matched/miss counters are O(1) reads for zero or one filter
    // dimension; with two or more, each op fuses the counting into
    // its single walk over the smallest postings list (so the list is
    // never walked twice and `visited` stays scan-comparable).
    const bool have_counts = absent || dims <= 1;
    std::size_t matched = 0, misses = 0;
    if (absent) {
        // matched stays 0.
    } else if (dims == 0) {
        matched = n;
        misses = static_cast<std::size_t>(idx.totals().misses);
    } else if (dims == 1) {
        const db::IndexKeyCounts *c =
            pc_id ? idx.pcCounts(*pc_id)
                  : (addr_id ? idx.addrCounts(*addr_id)
                             : idx.setCounts(*prog.set_id));
        matched = static_cast<std::size_t>(c->accesses);
        misses = static_cast<std::size_t>(c->misses);
    }

    // Two or more dimensions: intersect the two smallest lists through
    // the adaptive kernels once, then walk the (ascending) result.
    std::vector<std::uint32_t> &hits = scratch.rows;
    hits.clear();
    const bool kernel_path = !absent && dims >= 2;
    if (kernel_path) {
        idx.intersect(lists[0], lists[1], 0, hits);
        visited += std::min(lists[0].size(), lists[1].size());
    }
    // The intersection already enforces its two dimensions; only a
    // third one needs the residual column check.
    const bool need_residual = dims >= 3;
    const auto hitMatches = [&](std::size_t i) {
        return !need_residual || rowMatches(i);
    };

    switch (prog.op) {
      case DslOp::SelectRows: {
        if (have_counts) {
            const std::size_t take =
                prog.limit ? std::min(prog.limit, matched) : matched;
            if (take > 0 && dims == 0) {
                for (std::size_t i = 0; i < take; ++i)
                    res.rows.push_back(table.row(i));
            } else if (take > 0) {
                // dims == 1: the primary list is exactly the match
                // set, so a limit-bounded decode is the whole walk.
                db::decodeList(lists[0], hits, take);
                for (const auto i : hits)
                    res.rows.push_back(table.row(i));
                visited += hits.size();
            }
        } else {
            // One walk: count every match, materialise the first
            // `limit` (0 = all) — same rows, same order as the scan.
            for (const auto i : hits) {
                if (!hitMatches(i))
                    continue;
                ++matched;
                if (!prog.limit || res.rows.size() < prog.limit)
                    res.rows.push_back(table.row(i));
            }
        }
        res.ok = true;
        break;
      }
      case DslOp::CountRows:
      case DslOp::MissRate:
      case DslOp::HitCount: {
        if (!have_counts) {
            for (const auto i : hits) {
                if (hitMatches(i)) {
                    ++matched;
                    misses += table.isMissAt(i);
                }
            }
        }
        if (prog.op == DslOp::CountRows) {
            res.number = static_cast<double>(matched);
            res.ok = true;
        } else if (prog.op == DslOp::MissRate) {
            if (matched == 0) {
                res.error = "no rows match the filters";
                break;
            }
            res.number = static_cast<double>(misses) /
                         static_cast<double>(matched);
            res.ok = true;
        } else {
            res.number = static_cast<double>(matched - misses);
            res.ok = true;
        }
        break;
      }
      case DslOp::MeanField:
      case DslOp::SumField:
      case DslOp::MinField:
      case DslOp::MaxField:
      case DslOp::StdField: {
        std::vector<double> &xs = scratch.samples;
        xs.clear();
        xs.reserve(matched);
        const auto collect = [&](std::size_t i) {
            const std::int64_t v = fieldValue(table, i, prog.field);
            if (v != db::kNoValue)
                xs.push_back(static_cast<double>(v));
        };
        if (!absent && dims == 0) {
            for (std::size_t i = 0; i < n; ++i)
                collect(i);
            visited += n;
        } else if (!absent && have_counts) {
            // dims == 1: the primary list is exactly the match set;
            // walk it in place, no materialized row-id vector.
            db::forEachRow(lists[0], collect);
            visited += lists[0].size();
        } else if (!absent) {
            for (const auto i : hits) {
                if (hitMatches(i)) {
                    ++matched;
                    collect(i);
                }
            }
        }
        aggregateSamples(xs, prog, res);
        break;
      }
      default: res.error = "unsupported operation"; break;
    }

    res.matched = matched;
    idx.noteLookup(visited);
    return res;
}

/** The pre-index O(n) row walk — the executable specification. */
DslResult
Interpreter::runFilteredScan(const db::TraceEntry &entry,
                             const DslProgram &prog,
                             ExecScratch & /*scratch*/) const
{
    DslResult res;
    const db::TraceTable &table = entry.table;

    std::vector<std::uint32_t> rows;
    if (prog.pc || prog.address) {
        const std::uint64_t *pc = prog.pc ? &*prog.pc : nullptr;
        const std::uint64_t *addr =
            prog.address ? &*prog.address : nullptr;
        rows = table.filterScan(pc, addr);
    } else {
        rows.resize(table.size());
        for (std::size_t i = 0; i < table.size(); ++i)
            rows[i] = static_cast<std::uint32_t>(i);
    }
    if (prog.set_id) {
        std::vector<std::uint32_t> keep;
        for (const auto i : rows) {
            if (table.setAt(i) == *prog.set_id)
                keep.push_back(i);
        }
        rows.swap(keep);
    }
    res.matched = rows.size();

    switch (prog.op) {
      case DslOp::SelectRows: {
        const std::size_t take =
            prog.limit ? std::min(prog.limit, rows.size())
                       : rows.size();
        for (std::size_t k = 0; k < take; ++k)
            res.rows.push_back(table.row(rows[k]));
        res.ok = true;
        return res;
      }
      case DslOp::CountRows:
        res.number = static_cast<double>(rows.size());
        res.ok = true;
        return res;
      case DslOp::MissRate: {
        if (rows.empty()) {
            res.error = "no rows match the filters";
            return res;
        }
        std::size_t misses = 0;
        for (const auto i : rows)
            misses += table.isMissAt(i);
        res.number = static_cast<double>(misses) /
                     static_cast<double>(rows.size());
        res.ok = true;
        return res;
      }
      case DslOp::HitCount: {
        std::size_t hits = 0;
        for (const auto i : rows)
            hits += !table.isMissAt(i);
        res.number = static_cast<double>(hits);
        res.ok = true;
        return res;
      }
      default: break;
    }

    if (isAggregateOp(prog.op)) {
        std::vector<double> xs;
        xs.reserve(rows.size());
        for (const auto i : rows) {
            const std::int64_t v = fieldValue(table, i, prog.field);
            if (v != db::kNoValue)
                xs.push_back(static_cast<double>(v));
        }
        aggregateSamples(xs, prog, res);
        return res;
    }
    res.error = "unsupported operation";
    return res;
}

} // namespace cachemind::query
