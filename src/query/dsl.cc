#include "query/dsl.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/stats_util.hh"
#include "base/str.hh"

namespace cachemind::query {

const char *
dslOpName(DslOp op)
{
    switch (op) {
      case DslOp::SelectRows: return "select_rows";
      case DslOp::CountRows: return "count_rows";
      case DslOp::MissRate: return "miss_rate";
      case DslOp::HitCount: return "hit_count";
      case DslOp::MeanField: return "mean";
      case DslOp::SumField: return "sum";
      case DslOp::MinField: return "min";
      case DslOp::MaxField: return "max";
      case DslOp::StdField: return "std";
      case DslOp::UniquePcs: return "unique_pcs";
      case DslOp::UniqueSets: return "unique_sets";
      case DslOp::PerPcStats: return "per_pc_stats";
      case DslOp::PerSetStats: return "per_set_stats";
      case DslOp::Metadata: return "metadata";
    }
    return "?";
}

const char *
dslFieldName(DslField field)
{
    switch (field) {
      case DslField::ReuseDistance:
        return "accessed_address_reuse_distance_numeric";
      case DslField::EvictedReuseDistance:
        return "evicted_address_reuse_distance_numeric";
      case DslField::Recency:
        return "accessed_address_recency_numeric";
    }
    return "?";
}

std::string
renderProgramAsPython(const DslProgram &prog)
{
    std::ostringstream os;
    os << "df = loaded_data[\"" << prog.trace_key << "\"][\"data_frame\"]\n";
    std::vector<std::string> conds;
    if (prog.pc) {
        conds.push_back("df.program_counter == \"" + str::hex(*prog.pc) +
                        "\"");
    }
    if (prog.address) {
        conds.push_back("df.memory_address == \"" +
                        str::hex(*prog.address) + "\"");
    }
    if (prog.set_id) {
        conds.push_back("df.cache_set_id == " +
                        std::to_string(*prog.set_id));
    }
    if (!conds.empty())
        os << "df = df[" << str::join(conds, " & ") << "]\n";
    switch (prog.op) {
      case DslOp::SelectRows:
        os << "result = df.head(" << prog.limit << ").to_string()\n";
        break;
      case DslOp::CountRows:
        os << "result = f\"count = {len(df)}\"\n";
        break;
      case DslOp::MissRate:
        os << "result = f\"miss rate = "
              "{100.0 * df.is_miss.mean():.2f}%\"\n";
        break;
      case DslOp::HitCount:
        os << "result = f\"hits = {(1 - df.is_miss).sum()}\"\n";
        break;
      case DslOp::MeanField:
      case DslOp::SumField:
      case DslOp::MinField:
      case DslOp::MaxField:
      case DslOp::StdField:
        os << "xs = df[\"" << dslFieldName(prog.field)
           << "\"]; xs = xs[xs >= 0]\n"
           << "result = f\"" << dslOpName(prog.op) << " = {xs."
           << dslOpName(prog.op) << "()}\"\n";
        break;
      case DslOp::UniquePcs:
        os << "result = sorted(df.program_counter.unique())\n";
        break;
      case DslOp::UniqueSets:
        os << "result = sorted(df.cache_set_id.unique())\n";
        break;
      case DslOp::PerPcStats:
        os << "result = df.groupby(\"program_counter\").agg("
              "miss_rate=(\"is_miss\", \"mean\"), "
              "reuse=(\"accessed_address_reuse_distance_numeric\", "
              "\"mean\"))\n";
        break;
      case DslOp::PerSetStats:
        os << "result = df.groupby(\"cache_set_id\").agg("
              "hits=(\"is_miss\", lambda m: (1 - m).sum()))\n";
        break;
      case DslOp::Metadata:
        os << "result = loaded_data[\"" << prog.trace_key
           << "\"][\"metadata\"]\n";
        break;
    }
    return os.str();
}

namespace {

std::int64_t
fieldValue(const db::TraceTable &t, std::size_t i, DslField field)
{
    switch (field) {
      case DslField::ReuseDistance: return t.reuseDistanceAt(i);
      case DslField::EvictedReuseDistance:
        return t.evictedReuseDistanceAt(i);
      case DslField::Recency: return t.recencyAt(i);
    }
    return db::kNoValue;
}

} // namespace

DslResult
Interpreter::run(const DslProgram &prog) const
{
    DslResult res;
    const db::TraceEntry *entry = shards_.find(prog.trace_key);
    if (!entry) {
        res.error = "no trace named '" + prog.trace_key +
                    "' in the database";
        return res;
    }
    const db::TraceTable &table = entry->table;

    if (prog.op == DslOp::Metadata) {
        res.ok = true;
        res.text = entry->metadata;
        return res;
    }
    if (prog.op == DslOp::UniquePcs) {
        res.ok = true;
        res.values = table.uniquePcs();
        return res;
    }
    if (prog.op == DslOp::UniqueSets) {
        res.ok = true;
        for (const auto s : table.uniqueSets())
            res.values.push_back(s);
        return res;
    }
    if (prog.op == DslOp::PerPcStats || prog.op == DslOp::PerSetStats) {
        const db::StatsExpert *expert = shards_.statsFor(prog.trace_key);
        res.ok = true;
        if (prog.op == DslOp::PerPcStats) {
            if (prog.pc) {
                if (auto ps = expert->pcStats(*prog.pc))
                    res.pc_stats.push_back(*ps);
            } else {
                res.pc_stats = expert->allPcStats();
            }
        } else {
            if (prog.set_id) {
                if (auto ss = expert->setStats(*prog.set_id))
                    res.set_stats.push_back(*ss);
            } else {
                res.set_stats = expert->allSetStats();
            }
        }
        return res;
    }

    // Row-filtered operations.
    std::vector<std::size_t> rows;
    if (prog.pc || prog.address) {
        const std::uint64_t *pc = prog.pc ? &*prog.pc : nullptr;
        const std::uint64_t *addr =
            prog.address ? &*prog.address : nullptr;
        rows = table.filter(pc, addr);
    } else {
        rows.resize(table.size());
        for (std::size_t i = 0; i < table.size(); ++i)
            rows[i] = i;
    }
    if (prog.set_id) {
        std::vector<std::size_t> keep;
        for (const auto i : rows) {
            if (table.setAt(i) == *prog.set_id)
                keep.push_back(i);
        }
        rows.swap(keep);
    }
    res.matched = rows.size();

    switch (prog.op) {
      case DslOp::SelectRows: {
        const std::size_t take =
            prog.limit ? std::min(prog.limit, rows.size())
                       : rows.size();
        for (std::size_t k = 0; k < take; ++k)
            res.rows.push_back(table.row(rows[k]));
        res.ok = true;
        return res;
      }
      case DslOp::CountRows:
        res.number = static_cast<double>(rows.size());
        res.ok = true;
        return res;
      case DslOp::MissRate: {
        if (rows.empty()) {
            res.error = "no rows match the filters";
            return res;
        }
        std::size_t misses = 0;
        for (const auto i : rows)
            misses += table.isMissAt(i);
        res.number = static_cast<double>(misses) /
                     static_cast<double>(rows.size());
        res.ok = true;
        return res;
      }
      case DslOp::HitCount: {
        std::size_t hits = 0;
        for (const auto i : rows)
            hits += !table.isMissAt(i);
        res.number = static_cast<double>(hits);
        res.ok = true;
        return res;
      }
      case DslOp::MeanField:
      case DslOp::SumField:
      case DslOp::MinField:
      case DslOp::MaxField:
      case DslOp::StdField: {
        std::vector<double> xs;
        xs.reserve(rows.size());
        for (const auto i : rows) {
            const std::int64_t v = fieldValue(table, i, prog.field);
            if (v != db::kNoValue)
                xs.push_back(static_cast<double>(v));
        }
        if (xs.empty()) {
            res.error = "no finite samples for field " +
                        std::string(dslFieldName(prog.field));
            return res;
        }
        double out = 0.0;
        switch (prog.op) {
          case DslOp::MeanField: out = stats::mean(xs); break;
          case DslOp::SumField:
            for (const double x : xs)
                out += x;
            break;
          case DslOp::MinField:
            out = *std::min_element(xs.begin(), xs.end());
            break;
          case DslOp::MaxField:
            out = *std::max_element(xs.begin(), xs.end());
            break;
          case DslOp::StdField: out = stats::stdev(xs); break;
          default: break;
        }
        res.number = out;
        res.ok = true;
        return res;
      }
      default: break;
    }
    res.error = "unsupported operation";
    return res;
}

} // namespace cachemind::query
