#include "query/parsed_query.hh"

#include "base/str.hh"

namespace cachemind::query {

const char *
intentName(QueryIntent intent)
{
    switch (intent) {
      case QueryIntent::HitMiss: return "hit_miss";
      case QueryIntent::MissRate: return "miss_rate";
      case QueryIntent::PolicyComparison: return "policy_comparison";
      case QueryIntent::Count: return "count";
      case QueryIntent::Arithmetic: return "arithmetic";
      case QueryIntent::ListPcs: return "list_pcs";
      case QueryIntent::ListSets: return "list_sets";
      case QueryIntent::SetStats: return "set_stats";
      case QueryIntent::PcStats: return "pc_stats";
      case QueryIntent::TopPcs: return "top_pcs";
      case QueryIntent::Explain: return "explain";
      case QueryIntent::Concept: return "concept";
      case QueryIntent::CodeGen: return "code_gen";
      case QueryIntent::Unknown: return "unknown";
    }
    return "?";
}

const char *
fieldName(FieldKind field)
{
    switch (field) {
      case FieldKind::ReuseDistance:
        return "accessed_address_reuse_distance";
      case FieldKind::EvictedReuseDistance:
        return "evicted_address_reuse_distance";
      case FieldKind::Recency: return "accessed_address_recency";
      case FieldKind::Misses: return "misses";
      case FieldKind::Hits: return "hits";
      case FieldKind::Accesses: return "accesses";
    }
    return "?";
}

const char *
aggName(AggKind agg)
{
    switch (agg) {
      case AggKind::Mean: return "mean";
      case AggKind::Sum: return "sum";
      case AggKind::Min: return "min";
      case AggKind::Max: return "max";
      case AggKind::Std: return "std";
      case AggKind::Count: return "count";
    }
    return "?";
}

std::string
ParsedQuery::slotKey() const
{
    // Field order is part of the canonical form; absent optionals are
    // omitted entirely so present/absent never alias.
    std::string key = intentName(intent);
    if (pc)
        key += "|pc=" + str::hex(*pc);
    if (address)
        key += "|addr=" + str::hex(*address);
    if (set_id)
        key += "|set=" + std::to_string(*set_id);
    if (!workloads.empty())
        key += "|wl=" + str::join(workloads, ",");
    if (!policies.empty())
        key += "|pol=" + str::join(policies, ",");
    key += std::string("|agg=") + aggName(agg);
    key += std::string("|field=") + fieldName(field);
    key += "|topn=" + std::to_string(top_n);
    return key;
}

} // namespace cachemind::query
