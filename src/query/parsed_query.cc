#include "query/parsed_query.hh"

namespace cachemind::query {

const char *
intentName(QueryIntent intent)
{
    switch (intent) {
      case QueryIntent::HitMiss: return "hit_miss";
      case QueryIntent::MissRate: return "miss_rate";
      case QueryIntent::PolicyComparison: return "policy_comparison";
      case QueryIntent::Count: return "count";
      case QueryIntent::Arithmetic: return "arithmetic";
      case QueryIntent::ListPcs: return "list_pcs";
      case QueryIntent::ListSets: return "list_sets";
      case QueryIntent::SetStats: return "set_stats";
      case QueryIntent::PcStats: return "pc_stats";
      case QueryIntent::TopPcs: return "top_pcs";
      case QueryIntent::Explain: return "explain";
      case QueryIntent::Concept: return "concept";
      case QueryIntent::CodeGen: return "code_gen";
      case QueryIntent::Unknown: return "unknown";
    }
    return "?";
}

const char *
fieldName(FieldKind field)
{
    switch (field) {
      case FieldKind::ReuseDistance:
        return "accessed_address_reuse_distance";
      case FieldKind::EvictedReuseDistance:
        return "evicted_address_reuse_distance";
      case FieldKind::Recency: return "accessed_address_recency";
      case FieldKind::Misses: return "misses";
      case FieldKind::Hits: return "hits";
      case FieldKind::Accesses: return "accesses";
    }
    return "?";
}

} // namespace cachemind::query
