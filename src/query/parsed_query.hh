/**
 * @file
 * Structured representation of a natural-language query and the
 * intents CacheMind distinguishes. Produced by NlQueryParser, consumed
 * by both retrievers and the benchmark harness.
 */

#ifndef CACHEMIND_QUERY_PARSED_QUERY_HH
#define CACHEMIND_QUERY_PARSED_QUERY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cachemind::query {

/** What the user is asking for. */
enum class QueryIntent {
    /** Hit-or-miss for a {pc, address, workload, policy} tuple. */
    HitMiss,
    /** Miss rate of a PC or a whole workload. */
    MissRate,
    /** Compare/rank policies for a PC or workload. */
    PolicyComparison,
    /** Count events under filters. */
    Count,
    /** Arithmetic over a retrieved field (mean/sum/max/min/std). */
    Arithmetic,
    /** Enumerate unique PCs. */
    ListPcs,
    /** Enumerate unique cache sets. */
    ListSets,
    /** Per-set statistics (hits, hit rate; hot/cold sets). */
    SetStats,
    /** Per-PC statistics bundle (reuse, recency, hit rate). */
    PcStats,
    /** Ranked PCs by a metric (most misses, highest reuse...). */
    TopPcs,
    /** Causal/analytic "why"-style question (ARA tier). */
    Explain,
    /** Retrieval-light microarchitecture concept question. */
    Concept,
    /** Request to generate analysis code. */
    CodeGen,
    Unknown,
};

/** Human-readable intent name (logging, transcripts). */
const char *intentName(QueryIntent intent);

/** Aggregation requested by an Arithmetic query. */
enum class AggKind { Mean, Sum, Min, Max, Std, Count };

/** Numeric field referenced by an Arithmetic/TopPcs query. */
enum class FieldKind {
    ReuseDistance,
    EvictedReuseDistance,
    Recency,
    Misses,
    Hits,
    Accesses,
};

const char *fieldName(FieldKind field);

/** Human-readable aggregate name (slot keys, logging). */
const char *aggName(AggKind agg);

/** A parsed query: symbolic slots extracted from free text. */
struct ParsedQuery
{
    QueryIntent intent = QueryIntent::Unknown;
    std::optional<std::uint64_t> pc;
    std::optional<std::uint64_t> address;
    std::optional<std::uint32_t> set_id;
    /** Matched workload names, best first. */
    std::vector<std::string> workloads;
    /** Matched policy names, best first. */
    std::vector<std::string> policies;
    AggKind agg = AggKind::Mean;
    FieldKind field = FieldKind::ReuseDistance;
    /** "top N" style limit (0 = unspecified). */
    std::size_t top_n = 0;
    /** The original text. */
    std::string raw;

    bool hasWorkload() const { return !workloads.empty(); }
    bool hasPolicy() const { return !policies.empty(); }
    const std::string &workload() const { return workloads.front(); }
    const std::string &policy() const { return policies.front(); }

    /**
     * Canonical, hashable rendering of every slot *except* `raw`: two
     * queries with equal slot keys ask for the same evidence, however
     * they were phrased. This is the per-query component of the
     * cross-question retrieval-cache key (retrievers whose output
     * depends on the raw text extend it — see Retriever::cacheKey).
     */
    std::string slotKey() const;
};

} // namespace cachemind::query

#endif // CACHEMIND_QUERY_PARSED_QUERY_HH
