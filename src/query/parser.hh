/**
 * @file
 * Natural-language query parser (§3.2.1–3.2.2 of the paper).
 *
 * Stage 1 extracts workload and policy names with the semantic name
 * matcher (embedding + fuzzy ranking); stage 2 extracts symbolic PC,
 * address, and set filters; keyword rules classify the intent.
 */

#ifndef CACHEMIND_QUERY_PARSER_HH
#define CACHEMIND_QUERY_PARSER_HH

#include "query/parsed_query.hh"
#include "text/embedding.hh"

namespace cachemind::query {

/** Parser configured with the known workload and policy vocabulary. */
class NlQueryParser
{
  public:
    NlQueryParser(std::vector<std::string> workload_names,
                  std::vector<std::string> policy_names);

    /** Parse free text into a structured query. */
    ParsedQuery parse(const std::string &text) const;

    const std::vector<std::string> &workloadNames() const
    {
        return workload_names_;
    }
    const std::vector<std::string> &policyNames() const
    {
        return policy_names_;
    }

  private:
    QueryIntent classifyIntent(const std::string &lower,
                               const ParsedQuery &slots) const;

    std::vector<std::string> workload_names_;
    std::vector<std::string> policy_names_;
    text::HashEmbedder embedder_;
};

} // namespace cachemind::query

#endif // CACHEMIND_QUERY_PARSER_HH
