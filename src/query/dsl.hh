/**
 * @file
 * The retrieval DSL and its interpreter — CacheMind-Ranger's
 * "generation and execution runtime" (§3.3).
 *
 * In the paper, Ranger asks an LLM to emit Python that slices the
 * pandas store. Offline, the equivalent is a small, typed query
 * program: filters + one operation over a named trace. The simulated
 * code-generation model emits DslPrograms (and a rendered Python-like
 * surface form for transcripts); the Interpreter executes them against
 * the TraceDatabase with exactly-checkable semantics.
 */

#ifndef CACHEMIND_QUERY_DSL_HH
#define CACHEMIND_QUERY_DSL_HH

#include <optional>
#include <string>
#include <vector>

#include "db/shard.hh"

namespace cachemind::query {

/** Operation performed after filtering. */
enum class DslOp {
    /** Materialise matching rows (bounded by `limit`). */
    SelectRows,
    /** Count matching rows. */
    CountRows,
    /** Miss rate over matching rows. */
    MissRate,
    /** Hit count over matching rows. */
    HitCount,
    /** Aggregate a numeric field over matching rows. */
    MeanField,
    SumField,
    MinField,
    MaxField,
    StdField,
    /** Unique PCs in the trace (ascending). */
    UniquePcs,
    /** Unique sets in the trace (ascending). */
    UniqueSets,
    /** Per-PC statistics (optionally only for the filtered pc). */
    PerPcStats,
    /** Per-set statistics. */
    PerSetStats,
    /** Return the metadata summary string. */
    Metadata,
};

const char *dslOpName(DslOp op);

/** Numeric fields addressable by aggregates. */
enum class DslField {
    ReuseDistance,
    EvictedReuseDistance,
    Recency,
};

const char *dslFieldName(DslField field);

/** One executable program. */
struct DslProgram
{
    /** Target trace key, e.g. "lbm_evictions_lru". */
    std::string trace_key;
    std::optional<std::uint64_t> pc;
    std::optional<std::uint64_t> address;
    std::optional<std::uint32_t> set_id;
    DslOp op = DslOp::SelectRows;
    DslField field = DslField::ReuseDistance;
    /** Row/entry cap for SelectRows and stats listings (0 = all). */
    std::size_t limit = 16;
};

/** Render the program as the Python the paper's Ranger would emit. */
std::string renderProgramAsPython(const DslProgram &prog);

/** Execution result. */
struct DslResult
{
    bool ok = false;
    std::string error;

    /** Scalar result (rates, counts, aggregates). */
    std::optional<double> number;
    /** Materialised rows (SelectRows). */
    std::vector<db::AccessRow> rows;
    /** Total matching rows before the limit was applied. */
    std::size_t matched = 0;
    /** Unique value listings (UniquePcs/UniqueSets). */
    std::vector<std::uint64_t> values;
    /** Per-PC statistics (PerPcStats). */
    std::vector<db::PcStats> pc_stats;
    /** Per-set statistics (PerSetStats). */
    std::vector<db::SetStats> set_stats;
    /** Metadata text (Metadata). */
    std::string text;
};

/**
 * How the interpreter executes row-filtered operations.
 *
 * Indexed (the default) serves filters from each shard's postings
 * index and counting aggregates from its precomputed counters —
 * sublinear in the table size. ReferenceScan is the pre-index O(n)
 * row walk, kept as the executable specification: randomized
 * equivalence tests assert both modes produce byte-identical results.
 */
enum class ExecMode {
    Indexed,
    ReferenceScan,
};

/**
 * Caller-owned scratch buffers reused across programs — multi-program
 * plans run dozens of programs back to back, and reusing the decoded-
 * postings / intersection / sample buffers cuts the per-program
 * allocation churn to zero once the high-water mark is reached. Not
 * thread-safe: one ExecScratch per executing thread.
 */
struct ExecScratch
{
    /** Decoded postings / kernel intersection result (row ids). */
    std::vector<std::uint32_t> rows;
    /** Finite field samples for aggregate ops. */
    std::vector<double> samples;
};

/** Executes DslPrograms against a shard view. */
class Interpreter
{
  public:
    explicit Interpreter(db::ShardSet shards,
                         ExecMode mode = ExecMode::Indexed)
        : shards_(std::move(shards)), mode_(mode)
    {
    }

    ExecMode mode() const { return mode_; }

    DslResult run(const DslProgram &prog) const;
    /** Same semantics, reusing the caller's scratch buffers. */
    DslResult run(const DslProgram &prog, ExecScratch &scratch) const;

  private:
    DslResult runFilteredIndexed(const db::TraceEntry &entry,
                                 const DslProgram &prog,
                                 ExecScratch &scratch) const;
    DslResult runFilteredScan(const db::TraceEntry &entry,
                              const DslProgram &prog,
                              ExecScratch &scratch) const;

    db::ShardSet shards_;
    ExecMode mode_ = ExecMode::Indexed;
};

} // namespace cachemind::query

#endif // CACHEMIND_QUERY_DSL_HH
