#include "query/parser.hh"

#include <algorithm>

#include "base/str.hh"

namespace cachemind::query {

namespace {

bool
hasAny(const std::string &lower,
       std::initializer_list<const char *> needles)
{
    for (const char *n : needles) {
        if (lower.find(n) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

NlQueryParser::NlQueryParser(std::vector<std::string> workload_names,
                             std::vector<std::string> policy_names)
    : workload_names_(std::move(workload_names)),
      policy_names_(std::move(policy_names)), embedder_(128)
{
}

ParsedQuery
NlQueryParser::parse(const std::string &text) const
{
    ParsedQuery q;
    q.raw = text;
    const std::string lower = str::toLower(text);

    // --- Stage 1: workload / policy extraction (semantic + fuzzy).
    const auto wl_matches =
        text::rankNames(lower, workload_names_, embedder_);
    for (const auto &m : wl_matches) {
        if (m.score >= 0.9)
            q.workloads.push_back(m.name);
    }
    const auto pol_matches =
        text::rankNames(lower, policy_names_, embedder_);
    for (const auto &m : pol_matches) {
        if (m.score >= 0.9)
            q.policies.push_back(m.name);
    }
    // Common aliases not in the canonical vocabulary.
    if (q.policies.empty()) {
        if (hasAny(lower, {"belady", "optimal", "opt ", "min policy"}))
            q.policies.push_back("belady");
        if (hasAny(lower, {"least recently used"}))
            q.policies.push_back("lru");
    }

    // --- Stage 2: symbolic slots.
    const auto hex_tokens = str::extractHexTokens(text);
    for (const auto tok : hex_tokens) {
        // PCs in our binaries live well below 16 MiB; data addresses
        // are large. The textual cue "pc 0x..." wins when present.
        if (!q.pc && tok < (1ULL << 28)) {
            q.pc = tok;
        } else if (!q.address && tok >= (1ULL << 28)) {
            q.address = tok;
        }
    }
    // "set 1424" style set ids.
    const auto set_pos = lower.find("set ");
    if (set_pos != std::string::npos) {
        const auto ints =
            str::extractIntTokens(lower.substr(set_pos, 24));
        if (!ints.empty() && ints[0] < (1u << 20))
            q.set_id = static_cast<std::uint32_t>(ints[0]);
    }
    // "top 5" / "5 hot" limits.
    const auto ints = str::extractIntTokens(lower);
    if (!ints.empty() && ints[0] >= 1 && ints[0] <= 1000 && !q.set_id)
        q.top_n = static_cast<std::size_t>(ints[0]);

    // --- Aggregate/field slots for arithmetic queries.
    if (hasAny(lower, {"standard deviation", "std ", "stdev",
                       "variance"})) {
        q.agg = AggKind::Std;
    } else if (hasAny(lower, {"average", "mean"})) {
        q.agg = AggKind::Mean;
    } else if (hasAny(lower, {"sum", "total"})) {
        q.agg = AggKind::Sum;
    } else if (hasAny(lower, {"maximum", "max "})) {
        q.agg = AggKind::Max;
    } else if (hasAny(lower, {"minimum", "min "})) {
        q.agg = AggKind::Min;
    }

    if (hasAny(lower, {"evicted reuse", "evicted-reuse",
                       "evicted_address_reuse"})) {
        q.field = FieldKind::EvictedReuseDistance;
    } else if (hasAny(lower, {"recency"})) {
        q.field = FieldKind::Recency;
    } else if (hasAny(lower, {"reuse distance", "reuse-distance",
                              "reuse_distance", "etr"})) {
        q.field = FieldKind::ReuseDistance;
    } else if (hasAny(lower, {"eviction", "evictions"})) {
        q.field = FieldKind::Misses;
    }

    q.intent = classifyIntent(lower, q);
    return q;
}

QueryIntent
NlQueryParser::classifyIntent(const std::string &lower,
                              const ParsedQuery &slots) const
{
    // Order matters: the more specific cues first.
    if (hasAny(lower, {"write code", "generate code", "python code",
                       "write a script", "code to"})) {
        return QueryIntent::CodeGen;
    }
    // Retrieval-light concept questions: no workload, no PC, and a
    // textbook-topic cue.
    if (!slots.hasWorkload() && !slots.pc &&
        hasAny(lower, {"cache size", "associativity",
                       "number of sets", "number of ways", "offset",
                       "tag bits", "compulsory", "capacity miss",
                       "conflict miss", "replacement policy do",
                       "what is reuse", "reuse distance and",
                       "prefetch", "write-back", "writeback",
                       "inclusive"})) {
        return QueryIntent::Concept;
    }
    if (hasAny(lower, {"why", "explain", "derive insight", "insight",
                       "analyze", "analyse", "reason about"})) {
        return QueryIntent::Explain;
    }
    if (hasAny(lower, {"how many", "count", "number of times",
                       "how often", "appear"})) {
        return QueryIntent::Count;
    }
    if (slots.hasWorkload() && hasAny(lower, {"miss rate", "hit rate"}) &&
        hasAny(lower, {"which policy", "lowest", "highest", "best",
                       "worst", "compare", "order the polic",
                       "rank the polic"})) {
        return QueryIntent::PolicyComparison;
    }
    if (slots.hasWorkload() &&
        hasAny(lower, {"which policy", "compare polic", "rank polic",
                       "across polic", "policies"})) {
        return QueryIntent::PolicyComparison;
    }
    if (hasAny(lower, {"hit or miss", "hit or a miss", "cache hit",
                       "result in a hit", "result in a miss",
                       "hit or cache miss"}) &&
        slots.pc && slots.address) {
        return QueryIntent::HitMiss;
    }
    // Set-hotness cues outrank the plain-rate check ("hot/cold sets
    // by hit rate" is a per-set question, not a rate question).
    if (hasAny(lower, {"hot set", "cold set", "hot and cold",
                       "set hotness", "hits per set",
                       "hit rate per set"})) {
        return QueryIntent::SetStats;
    }
    if (hasAny(lower, {"miss rate", "hit rate"})) {
        // Plain rate question (per PC or per workload).
        return QueryIntent::MissRate;
    }
    if (hasAny(lower, {"average", "mean", "standard deviation",
                       "variance", "sum of", "maximum", "minimum"})) {
        return QueryIntent::Arithmetic;
    }
    if (hasAny(lower, {"unique pcs", "all pcs", "list pcs",
                       "list all pcs", "unique program counters",
                       "list the pcs"})) {
        return QueryIntent::ListPcs;
    }
    if (hasAny(lower, {"hot set", "cold set", "hot and cold",
                       "set hotness", "hits per set",
                       "hit rate per set"})) {
        return QueryIntent::SetStats;
    }
    if (hasAny(lower, {"unique cache sets", "unique sets", "list sets",
                       "cache sets in ascending"})) {
        return QueryIntent::ListSets;
    }
    if (hasAny(lower, {"most cache misses", "most misses",
                       "most evictions", "causing the most",
                       "dominant miss", "top pcs", "identify pcs",
                       "bypass candidate", "suitable for bypass"})) {
        return QueryIntent::TopPcs;
    }
    if (slots.pc && slots.address) {
        // A PC+address tuple with no other cue: per-access lookup.
        return QueryIntent::HitMiss;
    }
    if (slots.pc) {
        return QueryIntent::PcStats;
    }
    if (hasAny(lower, {"cache size", "associativity", "number of sets",
                       "number of ways", "offset", "index", "tag",
                       "what is a", "how does"})) {
        return QueryIntent::Concept;
    }
    return QueryIntent::Unknown;
}

} // namespace cachemind::query
