/**
 * @file
 * Minimal blocking line-protocol TCP client: connect, send one line,
 * read one line. Shared by the serve tests, the example client, and
 * the round-trip benchmark so none of them re-implement socket
 * plumbing; a real deployment would speak the protocol from any
 * language that can write newline-delimited JSON to a socket.
 */

#ifndef CACHEMIND_SERVE_CLIENT_HH
#define CACHEMIND_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace cachemind::serve {

class LineClient
{
  public:
    LineClient() = default;
    ~LineClient();

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;
    LineClient(LineClient &&other) noexcept;
    LineClient &operator=(LineClient &&other) noexcept;

    /** Connect to host:port; false on failure. */
    bool connect(const std::string &host, std::uint16_t port);

    /** Send `line` plus the protocol newline; false on failure. */
    bool sendLine(const std::string &line);

    /**
     * Read the next newline-terminated line (newline stripped);
     * nullopt once the peer closed the connection.
     */
    std::optional<std::string> recvLine();

    /** Close the socket (idempotent; destructor calls it). */
    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    std::string buffer_;
};

} // namespace cachemind::serve

#endif // CACHEMIND_SERVE_CLIENT_HH
