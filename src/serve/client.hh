/**
 * @file
 * Minimal blocking line-protocol TCP client: connect, send one line,
 * read one line. Shared by the serve tests, the example client, and
 * the round-trip benchmark so none of them re-implement socket
 * plumbing; a real deployment would speak the protocol from any
 * language that can write newline-delimited JSON to a socket.
 */

#ifndef CACHEMIND_SERVE_CLIENT_HH
#define CACHEMIND_SERVE_CLIENT_HH

#include <cstdint>
#include <optional>
#include <string>

namespace cachemind::serve {

/**
 * Reconnect/retry knobs for LineClient::connectRetry() and
 * request(). Backoff is exponential (doubling from backoff_ms up to
 * max_backoff_ms) with a deterministic jitter draw keyed on
 * jitter_seed and the attempt number, so a fleet of clients hammering
 * a recovering server spreads out instead of thundering in lockstep —
 * and a test replaying the same seed sees the same schedule.
 */
struct RetryPolicy
{
    /** Total tries, first attempt included (minimum 1). */
    std::size_t attempts = 3;
    /** Initial backoff before the second attempt (milliseconds). */
    std::uint64_t backoff_ms = 10;
    /** Backoff ceiling (milliseconds). */
    std::uint64_t max_backoff_ms = 250;
    /** Key for the deterministic jitter draw (vary per client). */
    std::uint64_t jitter_seed = 0;
};

class LineClient
{
  public:
    LineClient() = default;
    ~LineClient();

    LineClient(const LineClient &) = delete;
    LineClient &operator=(const LineClient &) = delete;
    LineClient(LineClient &&other) noexcept;
    LineClient &operator=(LineClient &&other) noexcept;

    /**
     * Connect to host:port; false on failure. The endpoint is
     * remembered so request() can transparently reconnect.
     */
    bool connect(const std::string &host, std::uint16_t port);

    /**
     * connect() with up to policy.attempts tries, sleeping the
     * jittered exponential backoff between them. Covers the race
     * where a client starts before the server finishes binding.
     */
    bool connectRetry(const std::string &host, std::uint16_t port,
                      const RetryPolicy &policy = RetryPolicy{});

    /** Send `line` plus the protocol newline; false on failure. */
    bool sendLine(const std::string &line);

    /**
     * Read the next newline-terminated line (newline stripped);
     * nullopt once the peer closed the connection.
     */
    std::optional<std::string> recvLine();

    /**
     * Send one request line and read the first reply line, retrying
     * (reconnect + resend, jittered backoff) on connection failures.
     * A retry happens only while no byte of the reply has been seen:
     * once reply bytes arrive, a failure is returned as-is rather
     * than risking a duplicate side effect on the server. Streaming
     * callers read the remaining frames with recvLine() as usual.
     */
    std::optional<std::string>
    request(const std::string &line,
            const RetryPolicy &policy = RetryPolicy{});

    /** Close the socket (idempotent; destructor calls it). */
    void close();

    bool connected() const { return fd_ >= 0; }

  private:
    /** Sleep the jittered backoff before retry number `attempt`. */
    static void backoffSleep(const RetryPolicy &policy,
                             std::size_t attempt);

    int fd_ = -1;
    std::string buffer_;
    /** Remembered endpoint for reconnects ("" until connect()). */
    std::string host_;
    std::uint16_t port_ = 0;
    /** Did the current recvLine() call consume any reply bytes? */
    bool saw_reply_bytes_ = false;
};

} // namespace cachemind::serve

#endif // CACHEMIND_SERVE_CLIENT_HH
