#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "base/deadline.hh"
#include "base/failpoint.hh"
#include "base/random.hh"
#include "base/stats_util.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"
#include "core/cachemind.hh"
#include "obs/trace.hh"
#include "obs/trace_export.hh"
#include "retrieval/cache.hh"
#include "serve/protocol.hh"

namespace cachemind::serve {

namespace {

/** Write the frame plus the protocol newline; false = dead client. */
bool
sendFrame(int fd, const std::string &frame)
{
    // Chaos site: "drop" simulates the client dying mid-write, the
    // exact path a real torn connection exercises.
    if (fail::maybeDrop("serve.write"))
        return false;
    std::string wire = frame;
    wire += '\n';
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const auto n = ::send(fd, wire.data() + sent,
                              wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal: not a dead client
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * Buffered line read; nullopt once the peer closed. A buffer growing
 * past `max_bytes` with no newline in sight sets *overflow and gives
 * up: without the cap a client that streams bytes but never a newline
 * would grow the session buffer without bound.
 */
std::optional<std::string>
recvLine(int fd, std::string &buffer, std::size_t max_bytes,
         bool *overflow)
{
    *overflow = false;
    for (;;) {
        const auto nl = buffer.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer.substr(0, nl);
            buffer.erase(0, nl + 1);
            return line;
        }
        if (buffer.size() > max_bytes) {
            *overflow = true;
            return std::nullopt;
        }
        // Chaos site: "drop" simulates the peer closing mid-request.
        if (fail::maybeDrop("serve.read"))
            return std::nullopt;
        char chunk[4096];
        const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal: not a closed peer
        if (n <= 0)
            return std::nullopt;
        buffer.append(chunk, static_cast<std::size_t>(n));
    }
}

/** Bounded percentile reservoir (same scheme as EngineStatsRecorder). */
constexpr std::size_t kServeReservoirCap = 1024;

struct LatencyReservoir
{
    std::uint64_t count = 0;
    std::vector<double> samples;

    void
    push(double ms)
    {
        ++count;
        if (samples.size() < kServeReservoirCap) {
            samples.push_back(ms);
        } else {
            const std::uint64_t slot = splitMix64(count) % count;
            if (slot < kServeReservoirCap)
                samples[static_cast<std::size_t>(slot)] = ms;
        }
    }

    double
    percentile(double p) const
    {
        if (samples.empty())
            return 0.0;
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        return stats::percentileSorted(sorted, p);
    }
};

} // namespace

struct Server::Impl
{
    const db::TraceDatabase &db;
    const ServeOptions opts;

    // ------------------------------------------------------ lifecycle
    // Atomic: stop() closes and clears the fd while the accept loop
    // re-reads it every iteration.
    std::atomic<int> listen_fd{-1};
    std::uint16_t bound_port = 0;
    std::thread accept_thread;
    std::atomic<bool> stopping{false};
    bool started = false;

    // ------------------------------------------------------- sessions
    struct SessionSlot
    {
        std::thread thread;
        std::atomic<int> fd{-1};
        std::atomic<bool> finished{false};
    };
    std::mutex sessions_mu;
    std::list<std::unique_ptr<SessionSlot>> sessions;
    std::atomic<std::size_t> active_sessions{0};

    // ---------------------------------------------------- engine pool
    //
    // Engines keyed by (retriever, backend, params); idle engines are
    // parked per key and leased per request. `all` keeps ownership so
    // stats() can fold every engine, leased or parked. The ONE
    // retrieval cache is shared across every engine (keys embed the
    // retriever fingerprint, so no aliasing across configurations).
    std::shared_ptr<retrieval::RetrievalCache> shared_cache;
    mutable std::mutex pool_mu;
    struct PoolEntry
    {
        /** Engines parked between leases. */
        std::vector<core::CacheMind *> idle;
        /** Engines ever built for this key (bounds construction). */
        std::size_t total = 0;
        /**
         * Per-key lease queue. Each key signals its own condvar so a
         * release can never be consumed by a waiter on a different
         * key (a shared condvar with notify_one loses such wakeups:
         * the woken waiter re-checks its own key's predicate, sleeps
         * again, and the release that triggered the signal is never
         * seen by the waiter it was meant for). std::map never moves
         * its nodes, so the condvar stays valid while pool_mu is
         * dropped for engine construction.
         */
        std::condition_variable lease_ready;
    };
    std::map<std::string, PoolEntry> engine_pool;
    std::vector<std::unique_ptr<core::CacheMind>> all_engines;

    /** Ask sequence number, the trace_sample_every sampling clock. */
    std::atomic<std::uint64_t> ask_seq{0};

    // ---------------------------------------------------------- stats
    mutable std::mutex stats_mu;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t malformed = 0;
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t lease_timeouts = 0;
    struct RetrieverLatency
    {
        LatencyReservoir ttfe;
        LatencyReservoir ttlb;
    };
    std::map<std::string, RetrieverLatency> latency_by_retriever;

    Impl(const db::TraceDatabase &database, ServeOptions options)
        : db(database), opts(std::move(options)),
          shared_cache(
              opts.retrieval_cache_capacity
                  ? std::make_shared<retrieval::RetrievalCache>(
                        retrieval::RetrievalCache::Options{
                            opts.retrieval_cache_capacity,
                            opts.retrieval_cache_hot_slots,
                            opts.retrieval_cache_secondary_bytes})
                  : nullptr)
    {
    }

    bool start(std::string *error);
    void stop();
    void acceptLoop();
    void runSession(SessionSlot *slot);
    bool handleAsk(int fd, const Request &req);

    core::CacheMind *acquireEngine(const Request &req,
                                   std::string &key_out,
                                   std::string &error_out,
                                   bool *lease_timed_out);
    void releaseEngine(const std::string &key, core::CacheMind *engine);

    void
    recordAsk(const std::string &retriever, double ttfe_ms,
              double ttlb_ms)
    {
        std::lock_guard<std::mutex> lock(stats_mu);
        ++completed;
        auto &lat = latency_by_retriever[retriever];
        lat.ttfe.push(ttfe_ms);
        lat.ttlb.push(ttlb_ms);
    }

    ServeStats snapshot() const;
};

bool
Server::Impl::start(std::string *error)
{
    const auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        if (listen_fd >= 0) {
            ::close(listen_fd);
            listen_fd = -1;
        }
        return false;
    };
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
        return fail("socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opts.port);
    if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) != 1)
        return fail("bad listen address '" + opts.host + "'");
    if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return fail("bind() failed on " + opts.host + ":" +
                    std::to_string(opts.port));
    if (::listen(listen_fd, 64) != 0)
        return fail("listen() failed");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return fail("getsockname() failed");
    bound_port = ntohs(bound.sin_port);
    accept_thread = std::thread([this] { acceptLoop(); });
    started = true;
    return true;
}

void
Server::Impl::acceptLoop()
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping.load())
                return;
            // accept() failures such as EMFILE/ENFILE can persist for
            // a while; retrying instantly would turn this thread into
            // a 100%-CPU busy spin exactly when the host is starved.
            if (errno != EINTR) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            }
            continue;
        }
        if (stopping.load()) {
            ::close(fd);
            return;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        if (opts.session_send_buffer > 0) {
            ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF,
                         &opts.session_send_buffer,
                         sizeof(opts.session_send_buffer));
        }

        // Admission control at the door: load shedding is an explicit
        // protocol frame, not a hung connection. The counter is
        // incremented before the session thread exists so a burst of
        // accepts cannot overshoot the limit.
        std::size_t current = active_sessions.load();
        bool admitted = false;
        while (current < opts.max_sessions) {
            if (active_sessions.compare_exchange_weak(current,
                                                      current + 1)) {
                admitted = true;
                break;
            }
        }
        if (!admitted) {
            sendFrame(fd, helloFrame());
            sendFrame(fd, overloadedFrame("", opts.max_sessions));
            ::close(fd);
            std::lock_guard<std::mutex> lock(stats_mu);
            ++rejected;
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++accepted;
        }

        auto slot = std::make_unique<SessionSlot>();
        slot->fd.store(fd);
        SessionSlot *raw = slot.get();
        {
            std::lock_guard<std::mutex> lock(sessions_mu);
            // Reap sessions that already finished so a long-lived
            // server's slot list tracks live connections, not history.
            for (auto it = sessions.begin(); it != sessions.end();) {
                if ((*it)->finished.load()) {
                    (*it)->thread.join();
                    it = sessions.erase(it);
                } else {
                    ++it;
                }
            }
            sessions.push_back(std::move(slot));
        }
        raw->thread = std::thread([this, raw] { runSession(raw); });
    }
}

void
Server::Impl::runSession(SessionSlot *slot)
{
    const int fd = slot->fd.load();
    std::string buffer;
    if (sendFrame(fd, helloFrame())) {
        while (!stopping.load()) {
            bool overflow = false;
            const auto line = recvLine(fd, buffer,
                                       opts.max_request_bytes,
                                       &overflow);
            if (!line) {
                if (overflow) {
                    {
                        std::lock_guard<std::mutex> lock(stats_mu);
                        ++malformed;
                    }
                    sendFrame(fd,
                              errorFrame(
                                  "", "bad-request",
                                  "request line exceeds " +
                                      std::to_string(
                                          opts.max_request_bytes) +
                                      " bytes"));
                }
                break; // client closed (or oversized line)
            }
            if (str::trim(*line).empty())
                continue;
            std::string why;
            const auto req = parseRequest(*line, &why);
            if (!req) {
                {
                    std::lock_guard<std::mutex> lock(stats_mu);
                    ++malformed;
                }
                if (!sendFrame(fd, errorFrame("", "bad-request", why)))
                    break;
                continue;
            }
            if (req->op == Request::Op::Ping) {
                if (!sendFrame(fd, pongFrame(req->id)))
                    break;
                continue;
            }
            if (req->op == Request::Op::Stats) {
                if (!sendFrame(fd, statsFrame(req->id, snapshot())))
                    break;
                continue;
            }
            if (req->op == Request::Op::Trace) {
                // Span trees from the process TraceStore: by request
                // id, or the newest `last` matching the outcome
                // filter. Rendered as the compact text tree — the
                // flat protocol embeds it as one escaped string.
                const auto &store = obs::TraceStore::instance();
                std::string text;
                std::size_t found = 0;
                if (!req->request_id.empty()) {
                    if (const auto t =
                            store.byRequestId(req->request_id)) {
                        text = obs::toText(*t);
                        found = 1;
                    }
                } else {
                    const std::size_t last =
                        req->trace_last ? req->trace_last : 4;
                    for (const auto &t :
                         store.recent(last, req->trace_filter)) {
                        if (!text.empty())
                            text += '\n';
                        text += obs::toText(*t);
                        ++found;
                    }
                }
                if (!sendFrame(fd, traceFrame(req->id, found, text)))
                    break;
                continue;
            }
            if (req->op == Request::Op::Failpoints) {
                if (!opts.debug_failpoints) {
                    if (!sendFrame(fd,
                                   errorFrame(req->id, "forbidden",
                                              "failpoints are disabled "
                                              "on this server")))
                        break;
                    continue;
                }
                std::string spec_error;
                if (!fail::armSpec(req->failpoint_spec, &spec_error)) {
                    if (!sendFrame(fd, errorFrame(req->id,
                                                  "bad-request",
                                                  spec_error)))
                        break;
                    continue;
                }
                if (!sendFrame(fd, failpointsFrame(req->id,
                                                   fail::armedCount())))
                    break;
                continue;
            }
            if (!handleAsk(fd, *req))
                break;
        }
    }
    // Claim the fd before closing: stop() races this with an
    // exchange of its own, and whichever side wins the exchange owns
    // the descriptor. Without the claim, stop() could load the fd,
    // this thread could close it, and the kernel could recycle the
    // number for an unrelated descriptor before stop()'s shutdown().
    const int owned = slot->fd.exchange(-1);
    if (owned >= 0)
        ::close(owned);
    active_sessions.fetch_sub(1);
    slot->finished.store(true);
}

core::CacheMind *
Server::Impl::acquireEngine(const Request &req, std::string &key_out,
                            std::string &error_out,
                            bool *lease_timed_out)
{
    *lease_timed_out = false;
    core::EngineOptions eopts;
    eopts.retriever = req.retriever.empty() ? opts.default_retriever
                                            : req.retriever;
    eopts.backend =
        req.backend.empty() ? opts.default_backend : req.backend;
    eopts.retriever_params = req.params;
    eopts.build_threads = opts.engine_build_threads;
    eopts.stream_buffer = opts.stream_buffer;
    eopts.tokens_per_second = opts.tokens_per_second;
    eopts.shared_retrieval_cache = shared_cache;
    if (!shared_cache)
        eopts.retrieval_cache_capacity = 0;

    key_out = eopts.retriever + '|' + eopts.backend;
    for (const auto &[k, v] : req.params)
        key_out += '|' + k + '=' + v;

    const std::size_t cap =
        std::max<std::size_t>(opts.max_engines_per_key, 1);
    // Chaos site: stretch the lease path (outside the pool lock, so
    // the injected delay stalls only this request's acquisition).
    fail::maybeDelay("serve.lease");
    const bool bounded_wait = opts.lease_timeout_ms > 0.0;
    const auto lease_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                bounded_wait ? opts.lease_timeout_ms : 0.0));
    {
        std::unique_lock<std::mutex> lock(pool_mu);
        PoolEntry &entry = engine_pool[key_out];
        while (entry.idle.empty() && entry.total >= cap &&
               !stopping.load()) {
            // Every engine for this key is leased out and the key is
            // at its construction cap: queue for the next release
            // instead of building engine number cap+1 — but only for
            // lease_timeout_ms; past that the request is shed with a
            // typed overloaded frame rather than queueing unboundedly.
            if (!bounded_wait) {
                entry.lease_ready.wait(lock);
                continue;
            }
            if (entry.lease_ready.wait_until(lock, lease_deadline) ==
                    std::cv_status::timeout &&
                entry.idle.empty() && entry.total >= cap &&
                !stopping.load()) {
                *lease_timed_out = true;
                error_out = "no engine lease within " +
                            std::to_string(opts.lease_timeout_ms) +
                            " ms";
                return nullptr;
            }
        }
        if (!entry.idle.empty()) {
            core::CacheMind *engine = entry.idle.back();
            entry.idle.pop_back();
            return engine;
        }
        if (stopping.load()) {
            error_out = "server shutting down";
            return nullptr;
        }
        ++entry.total; // claim a build slot before unlocking
    }
    // Build (and warm) outside the pool lock: engine construction can
    // be heavy (LlamaIndex embeds its index) and must not serialize
    // unrelated sessions. Warming here keeps the one-time cold index
    // build off every session's time-to-first-event.
    auto built = core::CacheMind::create(db, std::move(eopts));
    if (!built.ok()) {
        error_out = core::errorMessage(built.error());
        std::lock_guard<std::mutex> lock(pool_mu);
        PoolEntry &entry = engine_pool[key_out];
        --entry.total; // release the claimed slot
        entry.lease_ready.notify_one();
        return nullptr;
    }
    auto owned = std::make_unique<core::CacheMind>(
        std::move(built).value());
    owned->warmup();
    core::CacheMind *engine = owned.get();
    {
        std::lock_guard<std::mutex> lock(pool_mu);
        all_engines.push_back(std::move(owned));
    }
    return engine;
}

void
Server::Impl::releaseEngine(const std::string &key,
                            core::CacheMind *engine)
{
    std::lock_guard<std::mutex> lock(pool_mu);
    PoolEntry &entry = engine_pool[key];
    entry.idle.push_back(engine);
    entry.lease_ready.notify_one();
}

bool
Server::Impl::handleAsk(int fd, const Request &req)
{
    // Returns false when the connection must be closed: a failed
    // frame write means the client is gone (or a chaos drop is
    // simulating exactly that), and serving further requests on the
    // socket would leave a live client waiting on a reply that was
    // never written.
    Stopwatch timer;

    // Per-request tracing: on when the client sent a request_id
    // (protocol v1.1) or the sampling clock fires. An untraced ask
    // pays this one relaxed increment and a null-pointer test per
    // span helper, nothing else.
    const std::uint64_t seq =
        ask_seq.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<obs::RequestTrace> trace;
    if (!req.request_id.empty() ||
        (opts.trace_sample_every > 0 &&
         seq % opts.trace_sample_every == 0)) {
        trace = std::make_shared<obs::RequestTrace>(
            req.request_id.empty() ? "sampled-" + std::to_string(seq)
                                   : req.request_id);
    }
    const std::uint32_t root =
        trace ? trace->beginSpan(0, "serve.ask") : 0;
    // The session is the trace's creator, so it records the finished
    // trace into the process TraceStore — exactly once, at whichever
    // terminal decision the request reaches. The serve-side outcome is
    // authoritative: the engine only fills it when unset.
    const auto finish = [&](const std::string &outcome) {
        if (!trace)
            return;
        trace->setOutcome(outcome);
        trace->endSpan(root);
        obs::TraceStore::instance().record(trace);
    };

    std::string key, why;
    bool lease_timed_out = false;
    core::CacheMind *engine = nullptr;
    {
        // Lease-wait span: how long this ask queued for a pooled
        // engine — the serve-side latency the engine never sees.
        obs::SpanScope lease(obs::TraceContext{trace, root}, "lease");
        engine = acquireEngine(req, key, why, &lease_timed_out);
        lease.annotate("engine_key", key);
        if (lease_timed_out)
            lease.annotate("timed_out", "true");
    }
    if (!engine) {
        if (lease_timed_out) {
            finish("overloaded");
            const bool alive =
                sendFrame(fd,
                          overloadedFrame(
                              req.id,
                              std::max<std::size_t>(
                                  opts.max_engines_per_key, 1),
                              req.request_id));
            std::lock_guard<std::mutex> lock(stats_mu);
            ++lease_timeouts;
            return alive;
        }
        finish("error");
        return sendFrame(fd, errorFrame(req.id, "bad-engine", why,
                                        req.request_id));
    }
    const std::string retriever_name = engine->retriever().name();
    if (trace)
        trace->annotate(root, "retriever", retriever_name);

    // Per-request deadline (server default when the request names
    // none). The engine degrades at the deadline proper; the session
    // enforces deadline + slack as the hard cut (see deadline_slack_ms).
    const double deadline_ms = req.deadline_ms > 0.0
                                   ? req.deadline_ms
                                   : opts.default_deadline_ms;
    core::AskOptions ask_opts;
    ask_opts.deadline_ms = deadline_ms;
    const Deadline hard_cut =
        deadline_ms > 0.0
            ? Deadline::afterMs(deadline_ms + opts.deadline_slack_ms)
            : Deadline();

    core::RequestContext ctx(req.question, ask_opts);
    ctx.request_id = req.request_id;
    ctx.trace = trace;
    ctx.trace_parent = root;
    auto result = engine->askStream(ctx);
    if (!result.ok()) {
        releaseEngine(key, engine);
        finish("error");
        return sendFrame(fd,
                         errorFrame(req.id,
                                    core::engineErrorCodeName(
                                        result.error().code),
                                    result.error().message,
                                    req.request_id));
    }
    auto stream = std::move(result).value();

    // Frame-by-frame relay: write each frame before popping the next
    // event, so a slow client's backpressure lands in this session's
    // bounded StreamChannel (stalling only its own pipeline worker).
    double ttfe_ms = -1.0;
    bool client_alive = true;
    bool saw_done = false;
    bool deadline_hit = false;
    bool degraded = false;
    // Which pipeline stage the request was last seen in — events carry
    // the span they were emitted under, so TTFE and a deadline cut can
    // both be attributed to a stage instead of a wall-clock shrug.
    auto last_kind = std::optional<core::StreamEvent::Kind>();
    try {
        for (;;) {
            bool expired = false;
            auto event = stream.nextBefore(hard_cut, &expired);
            if (expired) {
                deadline_hit = true;
                break;
            }
            if (!event)
                break;
            bool sent = false;
            {
                obs::SpanScope write(obs::TraceContext{trace, root},
                                     "write");
                sent = sendFrame(
                    fd, eventFrame(req.id, *event, req.request_id));
            }
            if (!sent) {
                client_alive = false;
                break;
            }
            if (ttfe_ms < 0.0) {
                ttfe_ms = timer.milliseconds();
                if (trace) {
                    // TTFE attribution: the stage whose span the
                    // first event was emitted under.
                    std::string stage = trace->spanName(event->span);
                    if (stage.empty())
                        stage = core::streamEventKindName(event->kind);
                    trace->annotate(root, "ttfe_stage", stage);
                }
            }
            last_kind = event->kind;
            if (event->kind == core::StreamEvent::Kind::Done) {
                saw_done = true;
                degraded = event->response &&
                           event->response->bundle.degraded;
            }
        }
    } catch (const std::exception &e) {
        // Pipeline failure (what blocking ask() would have thrown):
        // reported as an error frame, never a torn connection.
        stream.cancel();
        releaseEngine(key, engine);
        finish("error");
        return sendFrame(fd, errorFrame(req.id, "pipeline", e.what(),
                                        req.request_id));
    } catch (...) {
        stream.cancel();
        releaseEngine(key, engine);
        finish("error");
        return sendFrame(fd, errorFrame(req.id, "pipeline",
                                        "unknown pipeline failure",
                                        req.request_id));
    }

    if (deadline_hit) {
        // The pipeline blew through deadline + slack without reaching
        // its terminal event: cancel it (the engine's cooperative
        // token reclaims the worker) and tell the client with a typed
        // terminal frame instead of leaving it to time out on its own.
        stream.cancel();
        releaseEngine(key, engine);
        if (trace) {
            // The stage the cut landed in, inferred from the last
            // event that made it out of the pipeline.
            using Kind = core::StreamEvent::Kind;
            const char *stage = "parse";
            if (last_kind) {
                switch (*last_kind) {
                  case Kind::Parsed: stage = "plan"; break;
                  case Kind::Planned:
                  case Kind::EvidenceChunk: stage = "retrieve"; break;
                  case Kind::AnswerDelta: stage = "generate"; break;
                  case Kind::Done: stage = "done"; break;
                }
            }
            trace->annotate(root, "deadline_exceeded_in", stage);
        }
        finish("deadline_exceeded");
        const bool alive =
            sendFrame(fd, deadlineExceededFrame(req.id, deadline_ms,
                                                req.request_id));
        std::lock_guard<std::mutex> lock(stats_mu);
        ++deadline_exceeded;
        return alive;
    }
    if (!client_alive || !saw_done) {
        // Dead client mid-stream (or a stream that ended without its
        // terminal event): cancel so the engine's cooperative
        // cancellation token reclaims the in-flight retrieval work,
        // and close the connection — a still-listening client must
        // see EOF rather than wait forever for a terminal frame.
        stream.cancel();
        releaseEngine(key, engine);
        finish("cancelled");
        {
            std::lock_guard<std::mutex> lock(stats_mu);
            ++cancelled;
        }
        return false;
    }
    releaseEngine(key, engine);
    finish(degraded ? "degraded" : "done");
    recordAsk(retriever_name, std::max(ttfe_ms, 0.0),
              timer.milliseconds());
    return true;
}

ServeStats
Server::Impl::snapshot() const
{
    ServeStats s;
    {
        std::lock_guard<std::mutex> lock(stats_mu);
        s.accepted = accepted;
        s.rejected = rejected;
        s.completed = completed;
        s.cancelled = cancelled;
        s.malformed = malformed;
        s.deadline_exceeded = deadline_exceeded;
        s.lease_timeouts = lease_timeouts;
        for (const auto &[name, lat] : latency_by_retriever) {
            RetrieverServeStats r;
            r.asks = lat.ttfe.count;
            r.ttfe_p50_ms = lat.ttfe.percentile(50.0);
            r.ttfe_p90_ms = lat.ttfe.percentile(90.0);
            r.ttlb_p50_ms = lat.ttlb.percentile(50.0);
            r.ttlb_p90_ms = lat.ttlb.percentile(90.0);
            s.by_retriever[name] = r;
        }
    }
    // Fold engine stats across the pool: counters sum exactly;
    // percentile fields take the worst engine (merging reservoirs
    // across engines would misrepresent per-engine distributions).
    std::vector<core::CacheMind *> engines;
    {
        std::lock_guard<std::mutex> lock(pool_mu);
        engines.reserve(all_engines.size());
        for (const auto &e : all_engines)
            engines.push_back(e.get());
    }
    for (core::CacheMind *engine : engines) {
        const core::EngineStats es = engine->stats();
        s.engine.questions += es.questions;
        s.engine.batches += es.batches;
        s.engine.quality_low += es.quality_low;
        s.engine.quality_medium += es.quality_medium;
        s.engine.quality_high += es.quality_high;
        s.engine.degraded_answers += es.degraded_answers;
        s.engine.latency_p50_ms =
            std::max(s.engine.latency_p50_ms, es.latency_p50_ms);
        s.engine.latency_p90_ms =
            std::max(s.engine.latency_p90_ms, es.latency_p90_ms);
        s.engine.latency_p99_ms =
            std::max(s.engine.latency_p99_ms, es.latency_p99_ms);
        s.engine.latency_mean_ms =
            std::max(s.engine.latency_mean_ms, es.latency_mean_ms);
        s.engine.stream.streams += es.stream.streams;
        s.engine.stream.events += es.stream.events;
        s.engine.stream.evidence_chunks += es.stream.evidence_chunks;
        s.engine.stream.answer_deltas += es.stream.answer_deltas;
        s.engine.stream.cancelled += es.stream.cancelled;
        s.engine.stream.warmups += es.stream.warmups;
        s.engine.stream.warmup_ms_total += es.stream.warmup_ms_total;
        s.engine.stream.first_event_p50_ms =
            std::max(s.engine.stream.first_event_p50_ms,
                     es.stream.first_event_p50_ms);
        s.engine.stream.first_event_p90_ms =
            std::max(s.engine.stream.first_event_p90_ms,
                     es.stream.first_event_p90_ms);
        s.engine.stream.first_event_mean_ms =
            std::max(s.engine.stream.first_event_mean_ms,
                     es.stream.first_event_mean_ms);
        s.engine.trace.traced += es.trace.traced;
        s.engine.trace.slowest_parse += es.trace.slowest_parse;
        s.engine.trace.slowest_plan += es.trace.slowest_plan;
        s.engine.trace.slowest_retrieve += es.trace.slowest_retrieve;
        s.engine.trace.slowest_generate += es.trace.slowest_generate;
        s.engine.trace.parse_p50_ms =
            std::max(s.engine.trace.parse_p50_ms, es.trace.parse_p50_ms);
        s.engine.trace.parse_p90_ms =
            std::max(s.engine.trace.parse_p90_ms, es.trace.parse_p90_ms);
        s.engine.trace.plan_p50_ms =
            std::max(s.engine.trace.plan_p50_ms, es.trace.plan_p50_ms);
        s.engine.trace.plan_p90_ms =
            std::max(s.engine.trace.plan_p90_ms, es.trace.plan_p90_ms);
        s.engine.trace.retrieve_p50_ms =
            std::max(s.engine.trace.retrieve_p50_ms,
                     es.trace.retrieve_p50_ms);
        s.engine.trace.retrieve_p90_ms =
            std::max(s.engine.trace.retrieve_p90_ms,
                     es.trace.retrieve_p90_ms);
        s.engine.trace.generate_p50_ms =
            std::max(s.engine.trace.generate_p50_ms,
                     es.trace.generate_p50_ms);
        s.engine.trace.generate_p90_ms =
            std::max(s.engine.trace.generate_p90_ms,
                     es.trace.generate_p90_ms);
        s.engine.cache.hits += es.cache.hits;
        s.engine.cache.misses += es.cache.misses;
        s.engine.cache.evictions += es.cache.evictions;
        for (const auto &[name, c] : es.cache_by_retriever) {
            auto &agg = s.engine.cache_by_retriever[name];
            agg.hits += c.hits;
            agg.misses += c.misses;
            agg.evictions += c.evictions;
        }
        // Index totals come from the shared shard set: every engine
        // reports the same postings indexes, so take (don't sum —
        // summing would multiply them by the pool size).
        s.engine.index = es.index;
    }
    // Tier stats come straight from the ONE shared cache — every
    // engine reports the same numbers, so summing per engine would
    // multiply them by the pool size.
    if (shared_cache)
        s.engine.cache_tiers = shared_cache->tiered();
    // Process-wide by design: the failpoint registry is global, so a
    // multi-server process reports the same number everywhere.
    s.faults_injected = fail::injectedTotal();
    return s;
}

void
Server::Impl::stop()
{
    if (!started)
        return;
    stopping.store(true);
    // Wake sessions queued for an engine lease (taking pool_mu orders
    // the stopping store before their predicate re-check).
    {
        std::lock_guard<std::mutex> lock(pool_mu);
        for (auto &[key, entry] : engine_pool)
            entry.lease_ready.notify_all();
    }
    // Closing the listen socket unblocks accept(); no session can be
    // added after the accept thread is joined.
    const int lfd = listen_fd.exchange(-1);
    if (lfd >= 0) {
        ::shutdown(lfd, SHUT_RDWR);
        ::close(lfd);
    }
    if (accept_thread.joinable())
        accept_thread.join();
    // Take ownership of every session fd that its session has not
    // already closed (the exchange is the ownership handoff — see
    // runSession), shut them all down so blocked recv()/send() calls
    // return in parallel, then join and finally close. Closing only
    // after the join guarantees the descriptor number cannot be
    // recycled while the session thread could still pass it to a
    // syscall.
    std::vector<int> claimed;
    {
        std::lock_guard<std::mutex> lock(sessions_mu);
        for (auto &slot : sessions) {
            const int fd = slot->fd.exchange(-1);
            if (fd >= 0) {
                ::shutdown(fd, SHUT_RDWR);
                claimed.push_back(fd);
            }
        }
    }
    for (;;) {
        std::unique_ptr<SessionSlot> slot;
        {
            std::lock_guard<std::mutex> lock(sessions_mu);
            if (sessions.empty())
                break;
            slot = std::move(sessions.front());
            sessions.pop_front();
        }
        slot->thread.join();
    }
    for (const int fd : claimed)
        ::close(fd);
    started = false;
}

Server::Server(const db::TraceDatabase &db, ServeOptions opts)
    : impl_(std::make_unique<Impl>(db, std::move(opts)))
{
}

Server::~Server() { stop(); }

bool
Server::start(std::string *error)
{
    return impl_->start(error);
}

void
Server::stop()
{
    if (impl_)
        impl_->stop();
}

std::uint16_t
Server::port() const
{
    return impl_->bound_port;
}

ServeStats
Server::stats() const
{
    return impl_->snapshot();
}

const ServeOptions &
Server::options() const
{
    return impl_->opts;
}

namespace {

std::string
numberField(const char *key, double value)
{
    return std::string(",\"") + key + "\":" + str::fixed(value, 3);
}

std::string
countField(const char *key, std::uint64_t value)
{
    return std::string(",\"") + key + "\":" + std::to_string(value);
}

} // namespace

std::string
statsFrame(const std::string &id, const ServeStats &stats)
{
    std::string frame = "{\"frame\":\"stats\",\"id\":\"" +
                        jsonEscape(id) + "\"";
    frame += countField("accepted", stats.accepted);
    frame += countField("rejected", stats.rejected);
    frame += countField("completed", stats.completed);
    frame += countField("cancelled", stats.cancelled);
    frame += countField("malformed", stats.malformed);
    frame += countField("deadline_exceeded", stats.deadline_exceeded);
    frame += countField("lease_timeouts", stats.lease_timeouts);
    frame += countField("faults_injected", stats.faults_injected);
    frame += countField("degraded_answers",
                        stats.engine.degraded_answers);
    frame += countField("questions", stats.engine.questions);
    frame += countField("streams", stats.engine.stream.streams);
    frame += countField("stream_cancelled",
                        stats.engine.stream.cancelled);
    frame += countField("warmups", stats.engine.stream.warmups);
    frame += numberField("warmup_ms_total",
                         stats.engine.stream.warmup_ms_total);
    frame += countField("cache_hits", stats.engine.cache.hits);
    frame += countField("cache_misses", stats.engine.cache.misses);
    const auto &tiers = stats.engine.cache_tiers;
    frame += countField("hot_hits", tiers.hot.hits);
    frame += countField("hot_misses", tiers.hot.misses);
    frame += countField("hot_entries", tiers.hot.entries);
    frame += countField("hot_capacity", tiers.hot.capacity);
    frame += countField("secondary_hits", tiers.secondary.hits);
    frame += countField("secondary_misses", tiers.secondary.misses);
    frame += countField("secondary_entries", tiers.secondary.entries);
    frame += countField("secondary_bytes", tiers.secondary.bytes);
    frame += countField("secondary_decode_failures",
                        tiers.secondary.decode_failures);
    frame += countField("promotions", tiers.promotions);
    frame += countField("demotions", tiers.demotions);
    frame += numberField("compression_ratio",
                         tiers.secondary.compressionRatio());
    // Postings index: build amortisation, scan work avoided, which
    // intersection kernels the adaptive selector picked, and the
    // chunked-container mix (see db/postings_ops.hh).
    const auto &index = stats.engine.index;
    frame += countField("index_shards", index.shards_indexed);
    frame += countField("index_lookups", index.lookups);
    frame += countField("index_rows_skipped", index.rows_skipped);
    frame += countField("kernel_galloping", index.kernel_galloping);
    frame += countField("kernel_merge_simd", index.kernel_merge_simd);
    frame += countField("kernel_merge_scalar",
                        index.kernel_merge_scalar);
    frame += countField("kernel_bitmap", index.kernel_bitmap);
    frame += countField("kernel_bitmap_probe",
                        index.kernel_bitmap_probe);
    frame += countField("index_simd_ops", index.simd_ops);
    frame += countField("index_scalar_ops", index.scalar_ops);
    frame += countField("array_chunks", index.array_chunks);
    frame += countField("bitmap_chunks", index.bitmap_chunks);
    frame += countField("postings_bytes", index.postings_bytes);
    frame += numberField("first_event_p50_ms",
                         stats.engine.stream.first_event_p50_ms);
    frame += numberField("first_event_p90_ms",
                         stats.engine.stream.first_event_p90_ms);
    // Traced-request aggregates: per-stage percentiles and the
    // slowest-stage histogram (see EngineStats.trace).
    const auto &trace = stats.engine.trace;
    frame += countField("traced", trace.traced);
    frame += countField("slowest_parse", trace.slowest_parse);
    frame += countField("slowest_plan", trace.slowest_plan);
    frame += countField("slowest_retrieve", trace.slowest_retrieve);
    frame += countField("slowest_generate", trace.slowest_generate);
    frame += numberField("trace_parse_p50_ms", trace.parse_p50_ms);
    frame += numberField("trace_parse_p90_ms", trace.parse_p90_ms);
    frame += numberField("trace_plan_p50_ms", trace.plan_p50_ms);
    frame += numberField("trace_plan_p90_ms", trace.plan_p90_ms);
    frame += numberField("trace_retrieve_p50_ms",
                         trace.retrieve_p50_ms);
    frame += numberField("trace_retrieve_p90_ms",
                         trace.retrieve_p90_ms);
    frame += numberField("trace_generate_p50_ms",
                         trace.generate_p50_ms);
    frame += numberField("trace_generate_p90_ms",
                         trace.generate_p90_ms);
    for (const auto &[name, r] : stats.by_retriever) {
        frame += ",\"" + jsonEscape(name) + "\":{\"asks\":" +
                 std::to_string(r.asks);
        frame += numberField("ttfe_p50_ms", r.ttfe_p50_ms);
        frame += numberField("ttfe_p90_ms", r.ttfe_p90_ms);
        frame += numberField("ttlb_p50_ms", r.ttlb_p50_ms);
        frame += numberField("ttlb_p90_ms", r.ttlb_p90_ms);
        frame += "}";
    }
    frame += "}";
    return frame;
}

} // namespace cachemind::serve
