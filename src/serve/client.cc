#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace cachemind::serve {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient &&other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_))
{
    other.fd_ = -1;
}

LineClient &
LineClient::operator=(LineClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        other.fd_ = -1;
    }
    return *this;
}

bool
LineClient::connect(const std::string &host, std::uint16_t port)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return false;
    }
    return true;
}

bool
LineClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string wire = line;
    wire += '\n';
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const auto n = ::send(fd_, wire.data() + sent,
                              wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
LineClient::recvLine()
{
    if (fd_ < 0)
        return std::nullopt;
    for (;;) {
        const auto nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return std::nullopt; // peer closed (or error)
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

} // namespace cachemind::serve
