#include "serve/client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "base/random.hh"

namespace cachemind::serve {

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient &&other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)),
      host_(std::move(other.host_)), port_(other.port_)
{
    other.fd_ = -1;
}

LineClient &
LineClient::operator=(LineClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        buffer_ = std::move(other.buffer_);
        host_ = std::move(other.host_);
        port_ = other.port_;
        other.fd_ = -1;
    }
    return *this;
}

bool
LineClient::connect(const std::string &host, std::uint16_t port)
{
    close();
    host_ = host;
    port_ = port;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    // EINTR during connect leaves the handshake in an ambiguous state
    // on some systems; treat it as a plain failure — connectRetry()
    // and request() re-run the whole attempt on a fresh socket.
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        close();
        return false;
    }
    return true;
}

bool
LineClient::connectRetry(const std::string &host, std::uint16_t port,
                         const RetryPolicy &policy)
{
    const std::size_t tries = std::max<std::size_t>(policy.attempts, 1);
    for (std::size_t attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0)
            backoffSleep(policy, attempt);
        if (connect(host, port))
            return true;
    }
    return false;
}

bool
LineClient::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string wire = line;
    wire += '\n';
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const auto n = ::send(fd_, wire.data() + sent,
                              wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal: not a failure
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string>
LineClient::recvLine()
{
    if (fd_ < 0)
        return std::nullopt;
    for (;;) {
        const auto nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buffer_.substr(0, nl);
            buffer_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal: not a failure
        if (n <= 0)
            return std::nullopt; // peer closed (or error)
        saw_reply_bytes_ = true;
        buffer_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<std::string>
LineClient::request(const std::string &line, const RetryPolicy &policy)
{
    const std::size_t tries = std::max<std::size_t>(policy.attempts, 1);
    for (std::size_t attempt = 0; attempt < tries; ++attempt) {
        if (attempt > 0) {
            backoffSleep(policy, attempt);
            if (host_.empty() || !connect(host_, port_))
                continue;
        } else if (fd_ < 0) {
            if (host_.empty() || !connect(host_, port_))
                continue;
        }
        if (!sendLine(line)) {
            close();
            continue;
        }
        saw_reply_bytes_ = !buffer_.empty();
        auto reply = recvLine();
        if (reply)
            return reply;
        if (saw_reply_bytes_) {
            // The server started replying and then the connection
            // died: resending could duplicate a side effect, so
            // surface the failure instead of retrying.
            return std::nullopt;
        }
        close();
    }
    return std::nullopt;
}

void
LineClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buffer_.clear();
}

void
LineClient::backoffSleep(const RetryPolicy &policy, std::size_t attempt)
{
    std::uint64_t delay = policy.backoff_ms;
    for (std::size_t i = 1; i < attempt && delay < policy.max_backoff_ms;
         ++i)
        delay *= 2;
    delay = std::min(delay, policy.max_backoff_ms);
    if (delay == 0)
        return;
    // Deterministic jitter in [0.5, 1.5): keyed on the policy seed
    // and the attempt number, so distinct clients (distinct seeds)
    // spread out while a replayed test stays reproducible.
    const double jitter =
        0.5 + keyedUniform(hashCombine(policy.jitter_seed, attempt));
    const auto jittered =
        static_cast<std::uint64_t>(static_cast<double>(delay) * jitter);
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
}

} // namespace cachemind::serve
