/**
 * @file
 * The CacheMind serving front-end: a TCP line-protocol server over
 * the streaming engine.
 *
 * One accept-loop thread admits connections; each admitted connection
 * becomes a Session on its own thread, reading newline-delimited JSON
 * requests and writing one frame per engine StreamEvent (see
 * serve/protocol.hh). Admission control is connection-scoped: past
 * `max_sessions` in-flight sessions the server answers with a typed
 * "overloaded" frame and closes, so load shedding is explicit and
 * machine-readable instead of an accept backlog timeout.
 *
 * Engines are pooled and leased per request, keyed by (retriever,
 * backend, scenario params): an engine is built (and warmed) at most
 * once per distinct key and concurrency level, then parked and
 * reused. Every pooled engine shares ONE retrieval cache — cache keys
 * embed the retriever fingerprint, so differently configured engines
 * can never alias each other's bundles, while concurrent sessions
 * asking about the same trace slice assemble its evidence once.
 *
 * Backpressure: a session writes a frame to the socket before
 * popping the next event, so a slow client fills its own bounded
 * StreamChannel and stalls only its own pipeline worker. Nothing in
 * that path holds a lock or a cache in-flight claim (streams use the
 * cache's non-blocking peek/publish protocol), so one paused client
 * cannot stall other sessions or blocking ask() callers coalescing
 * on a hot cache key. A dead client (failed write) cancels the
 * stream; the engine's cooperative cancellation token then reclaims
 * the in-flight retrieval.
 */

#ifndef CACHEMIND_SERVE_SERVER_HH
#define CACHEMIND_SERVE_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/engine_stats.hh"
#include "db/database.hh"

namespace cachemind::serve {

/** Server configuration. */
struct ServeOptions
{
    /** Listen address (IPv4 dotted quad). */
    std::string host = "127.0.0.1";
    /** Listen port; 0 = ephemeral (read back via Server::port()). */
    std::uint16_t port = 0;
    /** Admission limit: in-flight sessions beyond this are rejected. */
    std::size_t max_sessions = 32;
    /** Engine defaults for requests that name no component. */
    std::string default_retriever = "sieve";
    std::string default_backend = "gpt-4o";
    /** Per-stream channel capacity (events; backpressure bound). */
    std::size_t stream_buffer = 64;
    /**
     * Engine-pool bound per (retriever, backend, params) key: at most
     * this many engines are ever built for one configuration; further
     * concurrent requests for the key wait for a lease instead of
     * paying another engine construction (LlamaIndex embeds its whole
     * index per engine). Waiting is queueing, not deadlock — leases
     * are request-scoped.
     */
    std::size_t max_engines_per_key = 4;
    /** build_threads for pooled engines (0 = hardware concurrency). */
    std::size_t engine_build_threads = 0;
    /** Streaming generation pace for pooled engines (0 = unpaced). */
    double tokens_per_second = 0.0;
    /** Capacity of the ONE retrieval cache shared by all engines. */
    std::size_t retrieval_cache_capacity = 1024;
    /**
     * Encoded-byte budget of the shared cache's compressed secondary
     * tier (0 = tier off). On by default: a serving question
     * distribution has a long tail, and keeping demoted bundles in
     * codec form turns most would-be recomputes into decode +
     * re-promote.
     */
    std::size_t retrieval_cache_secondary_bytes = 16u << 20;
    /** Hot-tier slot-table size (0 = derive from capacity). */
    std::size_t retrieval_cache_hot_slots = 0;
    /**
     * SO_SNDBUF for accepted sockets (0 = kernel default). Tests
     * shrink it so a deliberately slow client exercises channel
     * backpressure instead of hiding behind kernel buffering.
     */
    int session_send_buffer = 0;
    /**
     * Maximum accepted request-line length in bytes. A client that
     * exceeds it — including one that streams bytes without ever
     * sending a newline — gets a bad-request error frame and a closed
     * connection instead of growing the session buffer without bound.
     */
    std::size_t max_request_bytes = 1 << 20;
    /**
     * How long an ask may queue for an engine lease before the server
     * answers with a typed "overloaded" frame instead (milliseconds;
     * 0 = wait forever). Bounds the worst case where every engine for
     * a hot key is leased out: the client gets a machine-readable
     * shed signal it can retry on, not an unbounded stall.
     */
    double lease_timeout_ms = 5000.0;
    /**
     * Deadline applied to ask requests that carry no "deadline_ms"
     * field (milliseconds; 0 = unbounded, the historical behavior).
     */
    double default_deadline_ms = 0.0;
    /**
     * Grace added on top of a request's deadline before the session
     * hard-cuts the stream with a "deadline_exceeded" frame. The
     * engine itself degrades at the deadline proper (partial evidence,
     * answer marked degraded); the slack gives that in-engine
     * resolution time to produce a terminal done frame, so the hard
     * cut only fires when the pipeline is truly wedged.
     */
    double deadline_slack_ms = 250.0;
    /**
     * Honour the "failpoints" protocol verb (fault injection for
     * chaos tests). Off by default: production servers answer the
     * verb with a "forbidden" error frame.
     */
    bool debug_failpoints = false;
    /**
     * Trace every Nth ask request even when the client sent no
     * request_id (0 = trace only asks that carry one). Sampled traces
     * land in the process TraceStore — readable through the `trace`
     * verb and exported when CACHEMIND_TRACE_DIR is set. Untraced
     * requests pay one relaxed atomic increment and nothing else.
     */
    std::size_t trace_sample_every = 0;
};

/** Per-retriever session latency percentiles. */
struct RetrieverServeStats
{
    /** Completed ask sessions answered by this retriever. */
    std::uint64_t asks = 0;
    /** Time-to-first-event: request read -> first frame written. */
    double ttfe_p50_ms = 0.0;
    double ttfe_p90_ms = 0.0;
    /** Time-to-last-byte: request read -> done frame written. */
    double ttlb_p50_ms = 0.0;
    double ttlb_p90_ms = 0.0;
};

/** Point-in-time serving statistics (STATS protocol verb). */
struct ServeStats
{
    /** Connections admitted / rejected by admission control. */
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    /** Ask requests answered to the terminal done frame. */
    std::uint64_t completed = 0;
    /** Ask requests cut short by a dead/disconnected client. */
    std::uint64_t cancelled = 0;
    /** Malformed request lines answered with an error frame. */
    std::uint64_t malformed = 0;
    /** Asks hard-cut with a deadline_exceeded frame (slack spent). */
    std::uint64_t deadline_exceeded = 0;
    /** Asks shed with an overloaded frame after a lease-wait timeout. */
    std::uint64_t lease_timeouts = 0;
    /** Faults injected process-wide by armed failpoints (snapshot). */
    std::uint64_t faults_injected = 0;
    /** Per-retriever TTFE/TTLB percentiles. */
    std::map<std::string, RetrieverServeStats> by_retriever;
    /**
     * Engine-side stats folded across every pooled engine: counters
     * are exact sums; latency percentile fields report the worst
     * pooled engine (a max, not a merged distribution).
     */
    core::EngineStats engine;
};

/**
 * The server. start() binds and spawns the accept loop; stop() (and
 * the destructor) shuts down every session and joins all threads.
 * The database must outlive the server.
 */
class Server
{
  public:
    Server(const db::TraceDatabase &db, ServeOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind, listen, and spawn the accept loop. False on failure with
     * `error` (when non-null) describing the reason.
     */
    bool start(std::string *error = nullptr);

    /** Stop accepting, shut down sessions, join threads (idempotent). */
    void stop();

    /** The bound port (resolves an ephemeral port request). */
    std::uint16_t port() const;

    /** Serving statistics snapshot (thread-safe; the STATS verb). */
    ServeStats stats() const;

    const ServeOptions &options() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Render a ServeStats snapshot as the protocol's stats frame. */
std::string statsFrame(const std::string &id, const ServeStats &stats);

} // namespace cachemind::serve

#endif // CACHEMIND_SERVE_SERVER_HH
