/**
 * @file
 * The CacheMind line protocol: newline-delimited JSON over TCP.
 *
 * Each client request is one JSON object on one line; the server
 * answers with a sequence of JSON frames, one per line, mirroring the
 * engine's StreamEvents. The protocol is deliberately flat — every
 * value is a string or number, nesting is limited to the request's
 * one-level "params" object — so both ends parse it with the small
 * hand-rolled reader below instead of a JSON library dependency.
 *
 * Requests:
 *   {"op":"ask","id":"7","question":"...","retriever":"sieve",
 *    "backend":"gpt-4o","deadline_ms":250,"request_id":"req-42",
 *    "params":{"evidence_window":"4"}}
 *   {"op":"stats","id":"8"}
 *   {"op":"ping","id":"9"}
 *   {"op":"failpoints","id":"10","spec":"serve.lease=delay:50"}
 *   {"op":"trace","id":"11","request_id":"req-42"}
 *   {"op":"trace","id":"12","last":4,"filter":"bad"}
 *
 * Frames (server -> client), all carrying the request's "id":
 *   {"frame":"hello","proto":"1.1"}                   on connect
 *   {"frame":"parsed","id":..,"text":<raw question>}
 *   {"frame":"planned","id":..,"cache_key":".."}
 *   {"frame":"evidence","id":..,"label":"..","text":".."}
 *   {"frame":"delta","id":..,"text":".."}
 *   {"frame":"done","id":..,"answer":<full answer>}   terminal
 *     (plus "degraded":true when the answer came from partial,
 *      deadline-degraded evidence)
 *   {"frame":"pong","id":..}
 *   {"frame":"stats","id":..,<ServeStats fields>}
 *   {"frame":"error","id":..,"code":"..","message":".."}
 *   {"frame":"overloaded","id":..,"limit":N}          then close
 *   {"frame":"deadline_exceeded","id":..,"deadline_ms":N}  terminal
 *   {"frame":"failpoints","id":..,"armed":N}          debug only
 *   {"frame":"trace","id":..,"found":N,"traces":".."}
 *
 * Protocol v1.1 (the hello "proto" tag): an ask request may carry a
 * client-supplied "request_id". The server echoes it as a
 * "request_id" field on every frame of that request (parsed, planned,
 * evidence, delta, done, error, deadline_exceeded, overloaded), so a
 * client multiplexing questions over several sessions can correlate
 * frames, and the request is traced server-side — its span tree is
 * retrievable afterwards through the `trace` verb keyed by the same
 * id. Requests without a request_id get identical frames minus the
 * field (v1.0 clients see the wire format they always saw). The
 * `trace` verb returns span trees by request_id, or the last `last`
 * traces whose outcome matches `filter` ("" = all; "bad" = degraded,
 * deadline_exceeded, or error); the "traces" field is the compact
 * text rendering (the flat protocol embeds it as one escaped string).
 */

#ifndef CACHEMIND_SERVE_PROTOCOL_HH
#define CACHEMIND_SERVE_PROTOCOL_HH

#include <map>
#include <optional>
#include <string>

#include "core/stream.hh"

namespace cachemind::serve {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Parse one flat JSON object line into key -> decoded value. Values
 * may be strings, numbers, booleans, or null; one level of object
 * nesting is flattened as "outer.inner" keys (the request "params"
 * object). Returns nullopt on malformed input — the server answers
 * those with an error frame instead of guessing.
 */
std::optional<std::map<std::string, std::string>>
parseJsonObject(const std::string &line);

/** One parsed client request. */
struct Request
{
    enum class Op { Ask, Stats, Ping, Failpoints, Trace };

    Op op = Op::Ask;
    /** Client-chosen correlation id, echoed on every frame. */
    std::string id;
    /**
     * Ask: optional client-supplied request id (protocol v1.1). When
     * non-empty the server echoes it on every frame of this request
     * and records a server-side trace retrievable through Op::Trace.
     * Trace: the request id whose span tree to fetch.
     */
    std::string request_id;
    /** Ask: the natural-language question. */
    std::string question;
    /** Ask: engine selectors ("" = server default). */
    std::string retriever;
    std::string backend;
    /**
     * Ask: per-request deadline in milliseconds (0 = server default,
     * which itself defaults to unbounded). When the deadline passes
     * the request terminates with a degraded answer or a typed
     * deadline_exceeded frame — never a silent hang.
     */
    double deadline_ms = 0.0;
    /** Ask: retriever scenario knobs (flattened "params" object). */
    std::map<std::string, std::string> params;
    /**
     * Failpoints: the fail::armSpec spec string ("" or "off"
     * disarms everything). Only honoured when the server was started
     * with debug_failpoints — production servers answer "forbidden".
     */
    std::string failpoint_spec;
    /**
     * Trace: when request_id is empty, return the last `trace_last`
     * recorded traces (0 = server default) whose outcome matches
     * `trace_filter` ("" = all, "bad" = degraded / deadline_exceeded /
     * error, anything else = exact outcome match).
     */
    std::size_t trace_last = 0;
    std::string trace_filter;
};

/**
 * Parse a request line. On failure returns nullopt and fills `error`
 * (when non-null) with a human-readable reason for the error frame.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error = nullptr);

/** Render a request as its protocol line (client side; no newline). */
std::string renderRequest(const Request &request);

// ------------------------------------------------- frame rendering
//
// All renderers return the complete JSON object without the trailing
// newline; the transport appends it.

// Frames that belong to an ask request take the request's optional
// client-supplied request_id (protocol v1.1) and echo it as a
// "request_id" field when non-empty; pass "" for v1.0 behavior.

std::string helloFrame();
std::string pongFrame(const std::string &id);
std::string errorFrame(const std::string &id, const std::string &code,
                       const std::string &message,
                       const std::string &request_id = "");
std::string overloadedFrame(const std::string &id, std::size_t limit,
                            const std::string &request_id = "");
/** Terminal frame for a request whose deadline passed server-side. */
std::string deadlineExceededFrame(const std::string &id,
                                  double deadline_ms,
                                  const std::string &request_id = "");
/** Ack for a failpoints request; `armed` = sites armed afterwards. */
std::string failpointsFrame(const std::string &id, std::size_t armed);
/**
 * Answer to a trace request: `found` span trees, rendered through
 * obs::toText and embedded as one escaped string (the flat protocol
 * has no nested arrays).
 */
std::string traceFrame(const std::string &id, std::size_t found,
                       const std::string &text);

/** Render one engine StreamEvent as its protocol frame. */
std::string eventFrame(const std::string &id,
                       const core::StreamEvent &event,
                       const std::string &request_id = "");

} // namespace cachemind::serve

#endif // CACHEMIND_SERVE_PROTOCOL_HH
