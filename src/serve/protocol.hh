/**
 * @file
 * The CacheMind line protocol: newline-delimited JSON over TCP.
 *
 * Each client request is one JSON object on one line; the server
 * answers with a sequence of JSON frames, one per line, mirroring the
 * engine's StreamEvents. The protocol is deliberately flat — every
 * value is a string or number, nesting is limited to the request's
 * one-level "params" object — so both ends parse it with the small
 * hand-rolled reader below instead of a JSON library dependency.
 *
 * Requests:
 *   {"op":"ask","id":"7","question":"...","retriever":"sieve",
 *    "backend":"gpt-4o","deadline_ms":250,
 *    "params":{"evidence_window":"4"}}
 *   {"op":"stats","id":"8"}
 *   {"op":"ping","id":"9"}
 *   {"op":"failpoints","id":"10","spec":"serve.lease=delay:50"}
 *
 * Frames (server -> client), all carrying the request's "id":
 *   {"frame":"hello","proto":"1"}                     on connect
 *   {"frame":"parsed","id":..,"text":<raw question>}
 *   {"frame":"planned","id":..,"cache_key":".."}
 *   {"frame":"evidence","id":..,"label":"..","text":".."}
 *   {"frame":"delta","id":..,"text":".."}
 *   {"frame":"done","id":..,"answer":<full answer>}   terminal
 *     (plus "degraded":true when the answer came from partial,
 *      deadline-degraded evidence)
 *   {"frame":"pong","id":..}
 *   {"frame":"stats","id":..,<ServeStats fields>}
 *   {"frame":"error","id":..,"code":"..","message":".."}
 *   {"frame":"overloaded","id":..,"limit":N}          then close
 *   {"frame":"deadline_exceeded","id":..,"deadline_ms":N}  terminal
 *   {"frame":"failpoints","id":..,"armed":N}          debug only
 */

#ifndef CACHEMIND_SERVE_PROTOCOL_HH
#define CACHEMIND_SERVE_PROTOCOL_HH

#include <map>
#include <optional>
#include <string>

#include "core/stream.hh"

namespace cachemind::serve {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Parse one flat JSON object line into key -> decoded value. Values
 * may be strings, numbers, booleans, or null; one level of object
 * nesting is flattened as "outer.inner" keys (the request "params"
 * object). Returns nullopt on malformed input — the server answers
 * those with an error frame instead of guessing.
 */
std::optional<std::map<std::string, std::string>>
parseJsonObject(const std::string &line);

/** One parsed client request. */
struct Request
{
    enum class Op { Ask, Stats, Ping, Failpoints };

    Op op = Op::Ask;
    /** Client-chosen correlation id, echoed on every frame. */
    std::string id;
    /** Ask: the natural-language question. */
    std::string question;
    /** Ask: engine selectors ("" = server default). */
    std::string retriever;
    std::string backend;
    /**
     * Ask: per-request deadline in milliseconds (0 = server default,
     * which itself defaults to unbounded). When the deadline passes
     * the request terminates with a degraded answer or a typed
     * deadline_exceeded frame — never a silent hang.
     */
    double deadline_ms = 0.0;
    /** Ask: retriever scenario knobs (flattened "params" object). */
    std::map<std::string, std::string> params;
    /**
     * Failpoints: the fail::armSpec spec string ("" or "off"
     * disarms everything). Only honoured when the server was started
     * with debug_failpoints — production servers answer "forbidden".
     */
    std::string failpoint_spec;
};

/**
 * Parse a request line. On failure returns nullopt and fills `error`
 * (when non-null) with a human-readable reason for the error frame.
 */
std::optional<Request> parseRequest(const std::string &line,
                                    std::string *error = nullptr);

/** Render a request as its protocol line (client side; no newline). */
std::string renderRequest(const Request &request);

// ------------------------------------------------- frame rendering
//
// All renderers return the complete JSON object without the trailing
// newline; the transport appends it.

std::string helloFrame();
std::string pongFrame(const std::string &id);
std::string errorFrame(const std::string &id, const std::string &code,
                       const std::string &message);
std::string overloadedFrame(const std::string &id, std::size_t limit);
/** Terminal frame for a request whose deadline passed server-side. */
std::string deadlineExceededFrame(const std::string &id,
                                  double deadline_ms);
/** Ack for a failpoints request; `armed` = sites armed afterwards. */
std::string failpointsFrame(const std::string &id, std::size_t armed);

/** Render one engine StreamEvent as its protocol frame. */
std::string eventFrame(const std::string &id,
                       const core::StreamEvent &event);

} // namespace cachemind::serve

#endif // CACHEMIND_SERVE_PROTOCOL_HH
