#include "serve/protocol.hh"

#include <cctype>

#include "base/str.hh"
#include "core/cachemind.hh"

namespace cachemind::serve {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Cursor over one protocol line (no JSON library dependency). */
struct Scanner
{
    const std::string &s;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    peekIs(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    /** Decode a JSON string literal (cursor on the opening quote). */
    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return false;
            const char esc = s[pos++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > s.size())
                    return false;
                const auto code =
                    str::parseHex(s.substr(pos, 4));
                if (!code)
                    return false;
                pos += 4;
                // The protocol only escapes control bytes; decode
                // the Latin-1 range and reject the rest rather than
                // implementing full UTF-16 surrogate handling.
                if (*code > 0xff)
                    return false;
                out += static_cast<char>(*code);
                break;
              }
              default: return false;
            }
        }
        return false; // unterminated
    }

    /** Scalar value rendered back to its decoded/literal text. */
    bool
    scalar(std::string &out)
    {
        skipWs();
        if (peekIs('"'))
            return string(out);
        const std::size_t start = pos;
        while (pos < s.size() && s[pos] != ',' && s[pos] != '}' &&
               s[pos] != ']' &&
               !std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
        out = s.substr(start, pos - start);
        if (out.empty())
            return false;
        if (out == "true" || out == "false" || out == "null")
            return true;
        // Number: validated loosely — the consumer re-parses typed.
        for (const char c : out) {
            if (!std::isdigit(static_cast<unsigned char>(c)) &&
                c != '-' && c != '+' && c != '.' && c != 'e' &&
                c != 'E')
                return false;
        }
        return true;
    }
};

/**
 * Parse the members of an object the cursor just entered into `out`,
 * prefixing keys with `prefix`. `depth` limits nesting to the one
 * level the protocol uses ("params").
 */
bool
parseMembers(Scanner &sc, const std::string &prefix, int depth,
             std::map<std::string, std::string> &out)
{
    if (sc.consume('}'))
        return true; // empty object
    for (;;) {
        std::string key;
        if (!sc.string(key))
            return false;
        if (!sc.consume(':'))
            return false;
        if (sc.peekIs('{')) {
            if (depth >= 1)
                return false;
            sc.consume('{');
            if (!parseMembers(sc, prefix + key + ".", depth + 1, out))
                return false;
        } else {
            std::string value;
            if (!sc.scalar(value))
                return false;
            out[prefix + key] = std::move(value);
        }
        if (sc.consume(','))
            continue;
        return sc.consume('}');
    }
}

} // namespace

std::optional<std::map<std::string, std::string>>
parseJsonObject(const std::string &line)
{
    Scanner sc{line};
    if (!sc.consume('{'))
        return std::nullopt;
    std::map<std::string, std::string> out;
    if (!parseMembers(sc, "", 0, out))
        return std::nullopt;
    sc.skipWs();
    if (sc.pos != line.size())
        return std::nullopt; // trailing garbage
    return out;
}

std::optional<Request>
parseRequest(const std::string &line, std::string *error)
{
    const auto fields = parseJsonObject(line);
    if (!fields) {
        if (error)
            *error = "malformed JSON request line";
        return std::nullopt;
    }
    Request req;
    const auto get = [&](const char *key) -> std::string {
        const auto it = fields->find(key);
        return it == fields->end() ? std::string() : it->second;
    };
    const std::string op = str::toLower(get("op"));
    if (op == "ask") {
        req.op = Request::Op::Ask;
    } else if (op == "stats") {
        req.op = Request::Op::Stats;
    } else if (op == "ping") {
        req.op = Request::Op::Ping;
    } else if (op == "failpoints") {
        req.op = Request::Op::Failpoints;
    } else if (op == "trace") {
        req.op = Request::Op::Trace;
    } else {
        if (error)
            *error = op.empty() ? "missing \"op\""
                                : "unknown op '" + op + "'";
        return std::nullopt;
    }
    req.id = get("id");
    req.question = get("question");
    req.retriever = get("retriever");
    req.backend = get("backend");
    req.failpoint_spec = get("spec");
    req.request_id = get("request_id");
    req.trace_filter = get("filter");
    const std::string last = get("last");
    if (!last.empty()) {
        const auto parsed = str::parseDouble(last);
        if (!parsed || *parsed < 0.0 ||
            *parsed != static_cast<double>(
                           static_cast<long long>(*parsed))) {
            if (error)
                *error = "bad \"last\" value '" + last + "'";
            return std::nullopt;
        }
        req.trace_last = static_cast<std::size_t>(*parsed);
    }
    const std::string deadline = get("deadline_ms");
    if (!deadline.empty()) {
        const auto parsed = str::parseDouble(deadline);
        if (!parsed || *parsed < 0.0) {
            if (error)
                *error = "bad \"deadline_ms\" value '" + deadline + "'";
            return std::nullopt;
        }
        req.deadline_ms = *parsed;
    }
    for (const auto &[key, value] : *fields) {
        if (key.rfind("params.", 0) == 0)
            req.params[key.substr(7)] = value;
    }
    if (req.op == Request::Op::Ask && str::trim(req.question).empty()) {
        if (error)
            *error = "ask request without a question";
        return std::nullopt;
    }
    return req;
}

std::string
renderRequest(const Request &request)
{
    std::string line = "{\"op\":\"";
    switch (request.op) {
      case Request::Op::Ask: line += "ask"; break;
      case Request::Op::Stats: line += "stats"; break;
      case Request::Op::Ping: line += "ping"; break;
      case Request::Op::Failpoints: line += "failpoints"; break;
      case Request::Op::Trace: line += "trace"; break;
    }
    line += "\"";
    if (!request.id.empty())
        line += ",\"id\":\"" + jsonEscape(request.id) + "\"";
    if (!request.request_id.empty()) {
        line += ",\"request_id\":\"" + jsonEscape(request.request_id) +
                "\"";
    }
    if (request.trace_last > 0)
        line += ",\"last\":" + std::to_string(request.trace_last);
    if (!request.trace_filter.empty()) {
        line += ",\"filter\":\"" + jsonEscape(request.trace_filter) +
                "\"";
    }
    if (!request.question.empty()) {
        line +=
            ",\"question\":\"" + jsonEscape(request.question) + "\"";
    }
    if (!request.retriever.empty()) {
        line +=
            ",\"retriever\":\"" + jsonEscape(request.retriever) + "\"";
    }
    if (!request.backend.empty())
        line += ",\"backend\":\"" + jsonEscape(request.backend) + "\"";
    if (request.deadline_ms > 0.0) {
        // Render as an integer millisecond count when whole (the
        // common case), so the line stays human-readable.
        const auto whole = static_cast<long long>(request.deadline_ms);
        line += ",\"deadline_ms\":";
        line += static_cast<double>(whole) == request.deadline_ms
                    ? std::to_string(whole)
                    : std::to_string(request.deadline_ms);
    }
    if (!request.failpoint_spec.empty()) {
        line += ",\"spec\":\"" + jsonEscape(request.failpoint_spec) +
                "\"";
    }
    if (!request.params.empty()) {
        line += ",\"params\":{";
        bool first = true;
        for (const auto &[key, value] : request.params) {
            if (!first)
                line += ",";
            first = false;
            line += "\"" + jsonEscape(key) + "\":\"" +
                    jsonEscape(value) + "\"";
        }
        line += "}";
    }
    line += "}";
    return line;
}

namespace {

std::string
idField(const std::string &id)
{
    return ",\"id\":\"" + jsonEscape(id) + "\"";
}

/** v1.1 request-id echo; empty id renders nothing (v1.0 framing). */
std::string
requestIdField(const std::string &request_id)
{
    if (request_id.empty())
        return "";
    return ",\"request_id\":\"" + jsonEscape(request_id) + "\"";
}

} // namespace

std::string
helloFrame()
{
    return "{\"frame\":\"hello\",\"proto\":\"1.1\"}";
}

std::string
pongFrame(const std::string &id)
{
    return "{\"frame\":\"pong\"" + idField(id) + "}";
}

std::string
errorFrame(const std::string &id, const std::string &code,
           const std::string &message, const std::string &request_id)
{
    return "{\"frame\":\"error\"" + idField(id) + ",\"code\":\"" +
           jsonEscape(code) + "\",\"message\":\"" +
           jsonEscape(message) + "\"" + requestIdField(request_id) +
           "}";
}

std::string
overloadedFrame(const std::string &id, std::size_t limit,
                const std::string &request_id)
{
    return "{\"frame\":\"overloaded\"" + idField(id) +
           ",\"limit\":" + std::to_string(limit) +
           requestIdField(request_id) + "}";
}

std::string
deadlineExceededFrame(const std::string &id, double deadline_ms,
                      const std::string &request_id)
{
    const auto whole = static_cast<long long>(deadline_ms);
    return "{\"frame\":\"deadline_exceeded\"" + idField(id) +
           ",\"deadline_ms\":" +
           (static_cast<double>(whole) == deadline_ms
                ? std::to_string(whole)
                : std::to_string(deadline_ms)) +
           requestIdField(request_id) + "}";
}

std::string
failpointsFrame(const std::string &id, std::size_t armed)
{
    return "{\"frame\":\"failpoints\"" + idField(id) +
           ",\"armed\":" + std::to_string(armed) + "}";
}

std::string
traceFrame(const std::string &id, std::size_t found,
           const std::string &text)
{
    return "{\"frame\":\"trace\"" + idField(id) +
           ",\"found\":" + std::to_string(found) + ",\"traces\":\"" +
           jsonEscape(text) + "\"}";
}

std::string
eventFrame(const std::string &id, const core::StreamEvent &event,
           const std::string &request_id)
{
    using Kind = core::StreamEvent::Kind;
    std::string frame = "{\"frame\":\"";
    frame += core::streamEventKindName(event.kind);
    frame += "\"" + idField(id);
    switch (event.kind) {
      case Kind::Parsed:
        frame += ",\"text\":\"" + jsonEscape(event.parsed.raw) + "\"";
        break;
      case Kind::Planned:
        frame +=
            ",\"cache_key\":\"" + jsonEscape(event.cache_key) + "\"";
        break;
      case Kind::EvidenceChunk:
        frame += ",\"label\":\"" + jsonEscape(event.label) +
                 "\",\"text\":\"" + jsonEscape(event.text) + "\"";
        break;
      case Kind::AnswerDelta:
        frame += ",\"text\":\"" + jsonEscape(event.text) + "\"";
        break;
      case Kind::Done:
        frame += ",\"answer\":\"" +
                 jsonEscape(event.response ? event.response->text
                                           : std::string()) +
                 "\"";
        // Degraded marker: the answer was generated from partial
        // evidence because the request's deadline expired
        // mid-retrieval. Absent on clean answers, so fault-free runs
        // stay byte-identical to older servers.
        if (event.response && event.response->bundle.degraded)
            frame += ",\"degraded\":true";
        break;
    }
    frame += requestIdField(request_id);
    frame += "}";
    return frame;
}

} // namespace cachemind::serve
