#include "obs/trace_export.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/trace.hh"

namespace cachemind::obs {

namespace {

/** Minimal JSON string escaper (the obs layer is serve-independent). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatMicros(std::uint64_t ns)
{
    std::ostringstream os;
    os << ns / 1000 << '.' << (ns / 100) % 10;
    return os.str();
}

std::string
formatMillis(std::uint64_t ns)
{
    std::ostringstream os;
    const std::uint64_t us = ns / 1000;
    os << us / 1000 << '.' << (us / 100) % 10 << (us / 10) % 10 << "ms";
    return os.str();
}

void
renderTextNode(const std::vector<TraceSpan> &spans,
               const std::vector<std::vector<std::size_t>> &children,
               std::size_t index, int depth, bool include_timing,
               std::string &out)
{
    const TraceSpan &span = spans[index];
    out.append(static_cast<std::size_t>(depth) * 2, ' ');
    out += span.name;
    if (include_timing) {
        out += " (";
        if (span.end_ns >= span.start_ns && span.end_ns != 0)
            out += formatMillis(span.end_ns - span.start_ns);
        else
            out += "open";
        out += ")";
    }
    for (const Annotation &note : span.notes) {
        out += ' ';
        out += note.key;
        out += '=';
        out += note.value;
    }
    out += '\n';
    for (const std::size_t child : children[index])
        renderTextNode(spans, children, child, depth + 1, include_timing,
                       out);
}

} // namespace

std::string
toChromeJson(const RequestTrace &trace)
{
    const std::vector<TraceSpan> spans = trace.spans();
    std::uint64_t base_ns = 0;
    for (const TraceSpan &span : spans) {
        if (base_ns == 0 || (span.start_ns != 0 && span.start_ns < base_ns))
            base_ns = span.start_ns;
    }

    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",";
    out += "\"otherData\":{\"request_id\":\"" +
           escapeJson(trace.requestId()) + "\",\"outcome\":\"" +
           escapeJson(trace.outcome()) + "\"},";
    out += "\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
           "\"args\":{\"name\":\"cachemind\"}}";
    for (const TraceSpan &span : spans) {
        const std::uint64_t rel_ns =
            span.start_ns >= base_ns ? span.start_ns - base_ns : 0;
        const std::uint64_t dur_ns =
            span.end_ns > span.start_ns ? span.end_ns - span.start_ns : 0;
        out += ",{\"name\":\"" + escapeJson(span.name) + "\",";
        out += "\"ph\":\"X\",\"pid\":1,\"tid\":1,";
        out += "\"ts\":" + formatMicros(rel_ns) + ",";
        out += "\"dur\":" + formatMicros(dur_ns) + ",";
        out += "\"args\":{\"span_id\":" + std::to_string(span.id) +
               ",\"parent\":" + std::to_string(span.parent);
        for (const Annotation &note : span.notes) {
            out += ",\"" + escapeJson(note.key) + "\":\"" +
                   escapeJson(note.value) + "\"";
        }
        out += "}}";
    }
    out += "]}";
    return out;
}

std::string
toText(const RequestTrace &trace, bool include_timing)
{
    const std::vector<TraceSpan> spans = trace.spans();
    std::vector<std::vector<std::size_t>> children(spans.size());
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const std::uint32_t parent = spans[i].parent;
        if (parent != 0 && parent <= spans.size() &&
            static_cast<std::size_t>(parent - 1) != i)
            children[parent - 1].push_back(i);
        else
            roots.push_back(i);
    }

    std::string out;
    out += "[" + trace.requestId();
    if (!trace.outcome().empty())
        out += " outcome=" + trace.outcome();
    out += "]\n";
    for (const std::size_t root : roots)
        renderTextNode(spans, children, root, 0, include_timing, out);
    if (trace.dropped() > 0)
        out += "(+" + std::to_string(trace.dropped()) + " spans dropped)\n";
    return out;
}

bool
exportToDir(const RequestTrace &trace, const std::string &dir,
            std::string *path_out, std::string *error)
{
    std::string stem;
    for (const char c : trace.requestId()) {
        const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                          c == '.';
        stem += safe ? c : '_';
    }
    if (stem.empty())
        stem = "trace";
    std::uint64_t start_ns = 0;
    for (const TraceSpan &span : trace.spans()) {
        if (start_ns == 0 || (span.start_ns != 0 && span.start_ns < start_ns))
            start_ns = span.start_ns;
    }
    const std::string path =
        dir + "/trace_" + stem + "_" + std::to_string(start_ns) + ".json";

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error)
            *error = "cannot open " + path;
        return false;
    }
    out << toChromeJson(trace);
    out.close();
    if (!out) {
        if (error)
            *error = "write failed for " + path;
        return false;
    }
    if (path_out)
        *path_out = path;
    return true;
}

} // namespace cachemind::obs
