/**
 * @file
 * Per-request tracing: span trees across the ask pipeline and the
 * serve layer.
 *
 * A TraceSpan is one timed region (steady-clock start/end nanoseconds,
 * a name, a parent span id, and key=value annotations). A RequestTrace
 * collects the spans of one request — parse, plan, each retrieval
 * section, generate, plus serve-side lease-wait and frame-write spans —
 * into a tree rooted at the request's outermost span. Finished traces
 * move into TraceStore, a bounded ring buffer of recent traces the
 * serve layer's `trace` verb and the CACHEMIND_TRACE_DIR exporter read
 * from.
 *
 * Cost discipline (same as base/failpoint.hh): tracing is *per
 * request*, selected by the caller. An untraced request carries a null
 * RequestTrace pointer inside its TraceContext, and every span helper
 * starts with that single pointer test — no locks, no allocation, no
 * clock reads. Sampling (ServeOptions::trace_sample_every) and export
 * (CACHEMIND_TRACE_DIR) are gated on one relaxed atomic load each.
 *
 * Determinism: span ids are allocated in begin order on the pipeline
 * thread, and Ranger's shard-parallel execution emits evidence in plan
 * order (see retrieval/ranger.cc) — so the *shape* of a span tree
 * (names, nesting, annotation keys/values) is byte-stable across
 * exec_threads settings; only the timings differ. trace_export's
 * toText(include_timing=false) renders exactly that stable shape.
 */

#ifndef CACHEMIND_OBS_TRACE_HH
#define CACHEMIND_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cachemind::obs {

/** One key=value note attached to a span. */
struct Annotation {
    std::string key;
    std::string value;
};

/** One timed region of a request. Ids are 1-based; 0 means "no span". */
struct TraceSpan {
    std::uint32_t id = 0;
    /** Parent span id; 0 = a root-level span. */
    std::uint32_t parent = 0;
    std::string name;
    /** Steady-clock nanoseconds (see RequestTrace::nowNs). */
    std::uint64_t start_ns = 0;
    /** 0 while the span is still open. */
    std::uint64_t end_ns = 0;
    std::vector<Annotation> notes;
};

/**
 * All spans of one request, in begin order. Thread-safe: the serve
 * session thread and the pipeline worker append concurrently (a short
 * mutex per operation — acceptable because only *traced* requests pay
 * it). Span count is capped at kMaxSpans; further begins are counted
 * in dropped() and return span id 0, which every other operation
 * ignores.
 */
class RequestTrace
{
  public:
    static constexpr std::size_t kMaxSpans = 256;

    explicit RequestTrace(std::string request_id);

    const std::string &requestId() const { return request_id_; }

    /** Steady-clock nanoseconds, the time base of every span. */
    static std::uint64_t nowNs();

    /**
     * Open a span under `parent` (0 = root level) starting now.
     * Returns the new span's id, or 0 when the trace is full.
     */
    std::uint32_t beginSpan(std::uint32_t parent, std::string name);

    /** Close a span (no-op for id 0 or an already-closed span). */
    void endSpan(std::uint32_t id);

    /** Record a complete span in one shot (returns its id, 0 if full). */
    std::uint32_t addSpan(std::uint32_t parent, std::string name,
                          std::uint64_t start_ns, std::uint64_t end_ns);

    /** Attach a key=value note to a span (no-op for id 0). */
    void annotate(std::uint32_t id, std::string key, std::string value);

    /** Name of a span ("" for id 0 or an unknown id). */
    std::string spanName(std::uint32_t id) const;

    /**
     * Terminal outcome of the request: "done", "degraded",
     * "deadline_exceeded", "error", "overloaded", "cancelled".
     */
    void setOutcome(std::string outcome);
    std::string outcome() const;

    /** Snapshot of all spans, in begin order. */
    std::vector<TraceSpan> spans() const;

    /** Spans discarded because the trace hit kMaxSpans. */
    std::uint64_t dropped() const;

  private:
    mutable std::mutex mu_;
    std::string request_id_;
    std::string outcome_;
    std::vector<TraceSpan> spans_;
    std::uint64_t dropped_ = 0;
};

/**
 * The tracing handle threaded through the pipeline, the way Deadline
 * flows today: a shared RequestTrace (null = this request is not
 * traced) plus the span id new child spans should hang under. Copy it
 * freely; child() rebases the parent for a nested stage.
 */
struct TraceContext {
    std::shared_ptr<RequestTrace> trace;
    std::uint32_t parent = 0;

    explicit operator bool() const { return trace != nullptr; }

    /** Context whose new spans nest under `span`. */
    TraceContext child(std::uint32_t span) const { return {trace, span}; }

    /** Begin a span under this context's parent (0 when untraced). */
    std::uint32_t begin(std::string name) const
    {
        return trace ? trace->beginSpan(parent, std::move(name)) : 0;
    }

    void end(std::uint32_t id) const
    {
        if (trace)
            trace->endSpan(id);
    }

    void annotate(std::uint32_t id, std::string key, std::string value) const
    {
        if (trace)
            trace->annotate(id, std::move(key), std::move(value));
    }

    /** Annotate this context's parent span. */
    void note(std::string key, std::string value) const
    {
        annotate(parent, std::move(key), std::move(value));
    }
};

/**
 * RAII span: opens on construction (a no-op for an untraced context),
 * closes on destruction or an explicit end().
 */
class SpanScope
{
  public:
    SpanScope(const TraceContext &ctx, std::string name)
        : trace_(ctx.trace.get())
    {
        if (trace_)
            id_ = trace_->beginSpan(ctx.parent, std::move(name));
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

    ~SpanScope() { end(); }

    /** This span's id (0 when untraced or the trace was full). */
    std::uint32_t id() const { return id_; }

    void annotate(std::string key, std::string value)
    {
        if (trace_ && id_)
            trace_->annotate(id_, std::move(key), std::move(value));
    }

    /** Close early (idempotent; the destructor becomes a no-op). */
    void end()
    {
        if (trace_ && id_)
            trace_->endSpan(id_);
        trace_ = nullptr;
    }

  private:
    RequestTrace *trace_ = nullptr;
    std::uint32_t id_ = 0;
};

/**
 * Bounded ring buffer of recently finished traces, plus the sampled
 * chrome://tracing exporter. One process-wide instance: the serve
 * layer records every finished traced request here, the `trace` verb
 * reads back by request id or by recent outcome, and when an export
 * directory is configured (CACHEMIND_TRACE_DIR at process start, or
 * setExportDir) each recorded trace is also written as a Chrome
 * trace-event JSON file. The exporter's disabled fast path is one
 * relaxed atomic load.
 */
class TraceStore
{
  public:
    static TraceStore &instance();

    /** Traces retained for the `trace` verb (default 64). */
    void setCapacity(std::size_t n);

    /** Record a finished trace (and export it when a dir is set). */
    void record(std::shared_ptr<const RequestTrace> trace);

    /** Most recent trace with this request id, if still buffered. */
    std::shared_ptr<const RequestTrace>
    byRequestId(const std::string &id) const;

    /**
     * Up to `n` most recent traces, newest first. A non-empty
     * `outcome_filter` keeps only matching outcomes; the special
     * filter "bad" matches degraded, deadline_exceeded, and error.
     */
    std::vector<std::shared_ptr<const RequestTrace>>
    recent(std::size_t n, const std::string &outcome_filter = "") const;

    /** Enable ("" disables) per-trace JSON export into `dir`. */
    void setExportDir(std::string dir);
    std::string exportDir() const;

    /** Total traces recorded since process start. */
    std::uint64_t recorded() const;

    /** Files successfully exported since process start. */
    std::uint64_t exported() const;

    /** Drop all buffered traces (tests). */
    void clear();

  private:
    TraceStore();

    mutable std::mutex mu_;
    std::size_t capacity_ = 64;
    std::deque<std::shared_ptr<const RequestTrace>> ring_;
    std::string export_dir_;
    std::atomic<bool> export_enabled_{false};
    std::uint64_t recorded_ = 0;
    std::uint64_t exported_ = 0;
};

} // namespace cachemind::obs

#endif // CACHEMIND_OBS_TRACE_HH
