/**
 * @file
 * Renderers for finished RequestTraces: Chrome trace-event JSON for
 * chrome://tracing / Perfetto, and a compact indented-text tree for
 * the serve layer's `trace` verb and terminal inspection.
 */

#ifndef CACHEMIND_OBS_TRACE_EXPORT_HH
#define CACHEMIND_OBS_TRACE_EXPORT_HH

#include <string>

namespace cachemind::obs {

class RequestTrace;

/**
 * Chrome trace-event JSON: an object with a "traceEvents" array of
 * complete ("ph":"X") events, timestamps and durations in
 * microseconds, annotations in each event's "args". Loadable directly
 * in chrome://tracing or ui.perfetto.dev.
 */
std::string toChromeJson(const RequestTrace &trace);

/**
 * Compact indented span tree, one span per line:
 *
 *     [req-7 outcome=done]
 *     ask (12.4ms)
 *       parse (0.1ms)
 *       retrieve (9.8ms) cache=hot_hit
 *         section:overview (3.2ms)
 *
 * With include_timing=false the duration column is omitted, leaving
 * only the deterministic shape (names, nesting, annotations) — the
 * form the byte-stability tests compare across exec_threads settings.
 */
std::string toText(const RequestTrace &trace, bool include_timing = true);

/**
 * Write toChromeJson(trace) into `dir` as
 * `trace_<sanitized-request-id>_<start-ns>.json`. Returns false (and
 * fills `error` when non-null) if the file cannot be written; the
 * directory must already exist.
 */
bool exportToDir(const RequestTrace &trace, const std::string &dir,
                 std::string *path_out = nullptr,
                 std::string *error = nullptr);

} // namespace cachemind::obs

#endif // CACHEMIND_OBS_TRACE_EXPORT_HH
