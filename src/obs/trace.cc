#include "obs/trace.hh"

#include <chrono>
#include <cstdlib>

#include "obs/trace_export.hh"

namespace cachemind::obs {

RequestTrace::RequestTrace(std::string request_id)
    : request_id_(std::move(request_id))
{
    spans_.reserve(16);
}

std::uint64_t
RequestTrace::nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint32_t
RequestTrace::beginSpan(std::uint32_t parent, std::string name)
{
    const std::uint64_t now = nowNs();
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
        ++dropped_;
        return 0;
    }
    TraceSpan span;
    span.id = static_cast<std::uint32_t>(spans_.size() + 1);
    span.parent = parent;
    span.name = std::move(name);
    span.start_ns = now;
    spans_.push_back(std::move(span));
    return spans_.back().id;
}

void
RequestTrace::endSpan(std::uint32_t id)
{
    if (id == 0)
        return;
    const std::uint64_t now = nowNs();
    std::lock_guard<std::mutex> lock(mu_);
    if (id > spans_.size())
        return;
    TraceSpan &span = spans_[id - 1];
    if (span.end_ns == 0)
        span.end_ns = now;
}

std::uint32_t
RequestTrace::addSpan(std::uint32_t parent, std::string name,
                      std::uint64_t start_ns, std::uint64_t end_ns)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (spans_.size() >= kMaxSpans) {
        ++dropped_;
        return 0;
    }
    TraceSpan span;
    span.id = static_cast<std::uint32_t>(spans_.size() + 1);
    span.parent = parent;
    span.name = std::move(name);
    span.start_ns = start_ns;
    span.end_ns = end_ns;
    spans_.push_back(std::move(span));
    return spans_.back().id;
}

void
RequestTrace::annotate(std::uint32_t id, std::string key, std::string value)
{
    if (id == 0)
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (id > spans_.size())
        return;
    spans_[id - 1].notes.push_back({std::move(key), std::move(value)});
}

std::string
RequestTrace::spanName(std::uint32_t id) const
{
    if (id == 0)
        return "";
    std::lock_guard<std::mutex> lock(mu_);
    if (id > spans_.size())
        return "";
    return spans_[id - 1].name;
}

void
RequestTrace::setOutcome(std::string outcome)
{
    std::lock_guard<std::mutex> lock(mu_);
    outcome_ = std::move(outcome);
}

std::string
RequestTrace::outcome() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return outcome_;
}

std::vector<TraceSpan>
RequestTrace::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
}

std::uint64_t
RequestTrace::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

TraceStore &
TraceStore::instance()
{
    static TraceStore store;
    return store;
}

TraceStore::TraceStore()
{
    if (const char *dir = std::getenv("CACHEMIND_TRACE_DIR")) {
        if (dir[0] != '\0') {
            export_dir_ = dir;
            export_enabled_.store(true, std::memory_order_relaxed);
        }
    }
}

void
TraceStore::setCapacity(std::size_t n)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = n > 0 ? n : 1;
    while (ring_.size() > capacity_)
        ring_.pop_front();
}

void
TraceStore::record(std::shared_ptr<const RequestTrace> trace)
{
    if (!trace)
        return;
    bool do_export = export_enabled_.load(std::memory_order_relaxed);
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ring_.push_back(trace);
        while (ring_.size() > capacity_)
            ring_.pop_front();
        ++recorded_;
        if (do_export)
            dir = export_dir_;
    }
    if (do_export && !dir.empty()) {
        if (exportToDir(*trace, dir)) {
            std::lock_guard<std::mutex> lock(mu_);
            ++exported_;
        }
    }
}

std::shared_ptr<const RequestTrace>
TraceStore::byRequestId(const std::string &id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
        if ((*it)->requestId() == id)
            return *it;
    }
    return nullptr;
}

std::vector<std::shared_ptr<const RequestTrace>>
TraceStore::recent(std::size_t n, const std::string &outcome_filter) const
{
    std::vector<std::shared_ptr<const RequestTrace>> out;
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n;
         ++it) {
        const std::string outcome = (*it)->outcome();
        if (!outcome_filter.empty()) {
            if (outcome_filter == "bad") {
                if (outcome != "degraded" && outcome != "deadline_exceeded" &&
                    outcome != "error")
                    continue;
            } else if (outcome != outcome_filter) {
                continue;
            }
        }
        out.push_back(*it);
    }
    return out;
}

void
TraceStore::setExportDir(std::string dir)
{
    std::lock_guard<std::mutex> lock(mu_);
    export_dir_ = std::move(dir);
    export_enabled_.store(!export_dir_.empty(), std::memory_order_relaxed);
}

std::string
TraceStore::exportDir() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return export_dir_;
}

std::uint64_t
TraceStore::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return recorded_;
}

std::uint64_t
TraceStore::exported() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return exported_;
}

void
TraceStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
}

} // namespace cachemind::obs
