/**
 * @file
 * CacheMind-Ranger: Retrieval via Agentic Neural Generation and
 * Execution Runtime (§3.3).
 *
 * The paper's Ranger prompts an LLM (GPT-4o) with the database schema
 * and asks it to emit executable Python. Offline, code generation is
 * simulated by a deterministic planner that maps a parsed query to
 * DSL programs (the surface Python is still rendered for
 * transcripts); a *codegen fidelity* knob injects the characteristic
 * mis-generations of weaker models (wrong field, wrong aggregate,
 * dropped filter) via hash-keyed draws, so retrieval accuracy
 * degrades mechanistically rather than by fiat (DESIGN.md §2, §5).
 */

#ifndef CACHEMIND_RETRIEVAL_RANGER_HH
#define CACHEMIND_RETRIEVAL_RANGER_HH

#include "db/shard.hh"
#include "query/dsl.hh"
#include "query/parser.hh"
#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Ranger configuration. */
struct RangerConfig
{
    /**
     * Probability that a generated program is faithful to the query.
     * 1.0 models a strong code-generation backend (GPT-4o); lower
     * values model weaker backends.
     */
    double codegen_fidelity = 1.0;
    /** Row cap for SelectRows programs. */
    std::size_t select_limit = 8;
    /** Default policy used when the query names none. */
    std::string default_policy = "lru";
    /** Seed salt for the mis-generation draws. */
    std::uint64_t seed = 0x7a9eULL;
    /**
     * Execute programs on the postings index (default). Off = the
     * reference O(n) scan interpreter, kept for equivalence tests and
     * scan-vs-index measurement; results are byte-identical.
     */
    bool use_index = true;
    /**
     * Worker cap for shard-parallel execution of multi-program plans
     * (0 = hardware concurrency). Deliberately NOT part of
     * cacheFingerprint(): results land in plan order and mis-
     * generation draws are keyed by (question, program index), so
     * scheduling never changes a byte of any bundle.
     */
    std::size_t exec_threads = 0;
};

/** The Ranger retriever (serves any shard view, full store or subset). */
class RangerRetriever : public Retriever
{
  public:
    RangerRetriever(db::ShardSet shards,
                    RangerConfig cfg = RangerConfig{});

    const char *name() const override { return "ranger"; }
    /** Parsing shim: parse the question, then retrieveParsed. */
    ContextBundle retrieve(const std::string &query) override;
    /** Blocking entry: the streaming path with a discarding sink. */
    ContextBundle
    retrieveParsed(const query::ParsedQuery &parsed) override;
    /**
     * Primary implementation: one chunk per executed program (the
     * rendered Python plus its result), so multi-program plans
     * (policy comparisons) stream each policy's number as it is
     * computed. Byte-identical bundle to the blocking overload.
     */
    ContextBundle retrieveParsed(const query::ParsedQuery &parsed,
                                 EvidenceSink &sink) override;

    /** "ranger" + every RangerConfig knob that shapes programs. */
    std::string cacheFingerprint() const override;
    /**
     * (resolved shard key, slot key); below full fidelity the
     * mis-generation draws are keyed by the raw question text, so the
     * raw text joins the key and only verbatim repeats share.
     */
    std::string
    cacheKey(const query::ParsedQuery &parsed) const override;

  private:
    /** Plan the program(s) for a parsed query. */
    std::vector<query::DslProgram>
    planPrograms(const query::ParsedQuery &q,
                 const std::string &trace_key) const;

    /** Apply hash-keyed mis-generation to one program. */
    void corrupt(query::DslProgram &prog, std::uint64_t key) const;

    std::string resolveTraceKey(const query::ParsedQuery &q) const;

    db::ShardSet shards_;
    RangerConfig cfg_;
    query::NlQueryParser parser_;
    query::Interpreter interp_;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_RANGER_HH
