#include "retrieval/registry.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

RetrieverRegistry &
RetrieverRegistry::instance()
{
    static RetrieverRegistry registry;
    return registry;
}

bool
RetrieverRegistry::add(const std::string &name, Factory factory)
{
    const std::string key = str::toLower(str::trim(name));
    if (key.empty() || !factory)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.emplace(key, std::move(factory)).second;
}

bool
RetrieverRegistry::has(const std::string &name) const
{
    const std::string key = str::toLower(str::trim(name));
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(key) > 0;
}

std::unique_ptr<Retriever>
RetrieverRegistry::create(const std::string &name,
                          const db::ShardSet &shards) const
{
    const std::string key = str::toLower(str::trim(name));
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = factories_.find(key);
        if (it == factories_.end())
            return nullptr;
        factory = it->second;
    }
    return factory(shards);
}

std::vector<std::string>
RetrieverRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

RetrieverRegistrar::RetrieverRegistrar(const std::string &name,
                                       RetrieverRegistry::Factory factory)
{
    if (!RetrieverRegistry::instance().add(name, std::move(factory)))
        warn("duplicate retriever registration ignored: ", name);
}

} // namespace cachemind::retrieval
