#include "retrieval/registry.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

bool
RetrieverOptions::has(const std::string &key) const
{
    return params.count(key) > 0;
}

std::string
RetrieverOptions::get(const std::string &key,
                      const std::string &dflt) const
{
    const auto it = params.find(key);
    return it == params.end() ? dflt : it->second;
}

std::size_t
RetrieverOptions::getSize(const std::string &key, std::size_t dflt) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return dflt;
    const auto parsed = str::parseU64(str::trim(it->second));
    return parsed ? static_cast<std::size_t>(*parsed) : dflt;
}

double
RetrieverOptions::getDouble(const std::string &key, double dflt) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return dflt;
    const auto parsed = str::parseDouble(str::trim(it->second));
    return parsed ? *parsed : dflt;
}

bool
RetrieverOptions::getBool(const std::string &key, bool dflt) const
{
    const auto it = params.find(key);
    if (it == params.end())
        return dflt;
    const std::string v = str::toLower(str::trim(it->second));
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return dflt;
}

RetrieverRegistry &
RetrieverRegistry::instance()
{
    static RetrieverRegistry registry;
    return registry;
}

bool
RetrieverRegistry::add(const std::string &name, Factory factory)
{
    const std::string key = str::toLower(str::trim(name));
    if (key.empty() || !factory)
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.emplace(key, std::move(factory)).second;
}

bool
RetrieverRegistry::add(const std::string &name, SimpleFactory factory)
{
    if (!factory)
        return false;
    return add(name,
               Factory([factory = std::move(factory)](
                           const db::ShardSet &shards,
                           const RetrieverOptions &) {
                   return factory(shards);
               }));
}

bool
RetrieverRegistry::has(const std::string &name) const
{
    const std::string key = str::toLower(str::trim(name));
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(key) > 0;
}

std::unique_ptr<Retriever>
RetrieverRegistry::create(const std::string &name,
                          const db::ShardSet &shards) const
{
    return create(name, shards, RetrieverOptions{});
}

std::unique_ptr<Retriever>
RetrieverRegistry::create(const std::string &name,
                          const db::ShardSet &shards,
                          const RetrieverOptions &options) const
{
    const std::string key = str::toLower(str::trim(name));
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = factories_.find(key);
        if (it == factories_.end())
            return nullptr;
        factory = it->second;
    }
    return factory(shards, options);
}

std::vector<std::string>
RetrieverRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

RetrieverRegistrar::RetrieverRegistrar(const std::string &name,
                                       RetrieverRegistry::Factory factory)
{
    if (!RetrieverRegistry::instance().add(name, std::move(factory)))
        warn("duplicate retriever registration ignored: ", name);
}

RetrieverRegistrar::RetrieverRegistrar(
    const std::string &name, RetrieverRegistry::SimpleFactory factory)
{
    if (!RetrieverRegistry::instance().add(name, std::move(factory)))
        warn("duplicate retriever registration ignored: ", name);
}

} // namespace cachemind::retrieval
