/**
 * @file
 * The hot tier of the retrieval cache: a fixed-slot clock cache with
 * lock-free reads, in the HyperClock mold.
 *
 * The sharded-lock LRU it replaces took a shard mutex on every hit to
 * splice the LRU list — under a serving front-end's concurrency the
 * hottest keys serialized every session on one lock. Here a hit
 * touches only one atomic word per probed slot: readers acquire a
 * transient reference with a fetch_add on the slot's packed meta word
 * (state | clock bit | tag | refcount), copy the shared_ptr while
 * pinned, set the clock bit, and release. No reader ever blocks
 * another reader or waits on a writer.
 *
 * Writers (insert / evict) serialize on one mutex — insertions are
 * the miss path, already paying a full retrieval, so a writer lock
 * costs nothing measurable — and communicate with readers only
 * through the per-slot meta word: a slot is mutated only after a CAS
 * takes it from {visible, refcount 0} to the locked state, so a
 * pinned reader can never observe a slot mid-mutation.
 *
 * Replacement is CLOCK (second chance): every hit sets the slot's
 * clock bit; the sweep clears set bits and evicts the first clear
 * one. Fresh entries start with the bit clear — a hit earns the
 * second chance — so a key that was re-hit since the last sweep
 * always outlives one that never was. Eviction for capacity sweeps a
 * global hand; eviction to make room inside a full probe window
 * sweeps that window. Displaced entries are returned to the caller
 * for demotion to the next tier.
 */

#ifndef CACHEMIND_RETRIEVAL_CLOCK_CACHE_HH
#define CACHEMIND_RETRIEVAL_CLOCK_CACHE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "retrieval/cache_tier.hh"

namespace cachemind::retrieval {

/** Lock-free-read clock cache over immutable context bundles. */
class ClockCacheTier final : public CacheTier
{
  public:
    /**
     * @param capacity Maximum resident bundles — exact: entries()
     *        never exceeds it (no per-shard rounding; the configured
     *        budget is the budget).
     * @param slots Slot-table size; rounded up to a power of two and
     *        to at least 2x capacity so the probe windows stay
     *        sparse. 0 = derive from capacity.
     */
    explicit ClockCacheTier(std::size_t capacity,
                            std::size_t slots = 0);

    ClockCacheTier(const ClockCacheTier &) = delete;
    ClockCacheTier &operator=(const ClockCacheTier &) = delete;

    const char *name() const override { return "hot-clock"; }

    /** Lock-free: probes the key's window, pins, copies, releases. */
    BundlePtr lookup(const std::string &key) override;

    std::vector<Displaced> insert(const std::string &key,
                                  BundlePtr value) override;

    std::size_t entries() const override
    {
        return entries_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t slotCount() const { return slots_.size(); }

    TierStats stats() const override;

  private:
    /**
     * Packed per-slot state word. Readers and writers coordinate
     * exclusively through it:
     *
     *   bits  0..31  refcount (transient reader pins)
     *   bits 32..33  state: 0 empty, 1 locked (writer), 2 visible
     *   bit  34      clock (second-chance) bit
     *   bits 40..55  16-bit key-hash tag (probe filter)
     */
    static constexpr std::uint64_t kRefMask = 0xFFFFFFFFull;
    static constexpr int kStateShift = 32;
    static constexpr std::uint64_t kStateMask = 3ull << kStateShift;
    static constexpr std::uint64_t kStateEmpty = 0ull << kStateShift;
    static constexpr std::uint64_t kStateLocked = 1ull << kStateShift;
    static constexpr std::uint64_t kStateVisible = 2ull << kStateShift;
    static constexpr std::uint64_t kClockBit = 1ull << 34;
    static constexpr int kTagShift = 40;
    static constexpr std::uint64_t kTagMask = 0xFFFFull << kTagShift;

    /** Probe-window length: every key lives in one of these slots. */
    static constexpr std::size_t kProbeWindow = 16;

    struct Slot
    {
        std::atomic<std::uint64_t> meta{0};
        /** Mutated only by a writer holding the slot locked. */
        std::string key;
        BundlePtr value;
    };

    static std::uint64_t stateOf(std::uint64_t m) { return m & kStateMask; }
    static std::uint64_t tagOf(std::uint64_t m) { return m & kTagMask; }

    /** The key's probe sequence start and (odd) stride. */
    void probeSeq(const std::string &key, std::size_t *start,
                  std::size_t *step, std::uint64_t *tag) const;

    /**
     * Transition `slot` (which the writer mutex protects from other
     * writers) between states with a CAS loop that preserves the
     * refcount bits — transient reader pins must never be clobbered,
     * or their matching release would underflow.
     */
    void setState(Slot &slot, std::uint64_t state_and_tag);

    /**
     * Take a visible, unpinned slot to the locked state. False when
     * the slot is pinned (a reader holds a reference) or not visible.
     */
    bool tryLockForEvict(Slot &slot);

    /** Evict `slot` (locked by tryLockForEvict) into `out`. */
    void evictLocked(Slot &slot, std::vector<Displaced> *out);

    /**
     * Clock sweep from the global hand: clear set clock bits, evict
     * the first clear unpinned slot. False when a bounded sweep finds
     * no victim (everything pinned). Caller holds writer_mu_.
     */
    bool sweepEvictOne(std::vector<Displaced> *out);

    std::size_t capacity_ = 0;
    std::size_t mask_ = 0;
    std::vector<Slot> slots_;
    std::atomic<std::size_t> entries_{0};

    /** Serializes insert/evict; never touched by lookup(). */
    mutable std::mutex writer_mu_;
    /** Global clock hand (writer-only, under writer_mu_). */
    std::size_t hand_ = 0;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::uint64_t insertions_ = 0; // writer-only, under writer_mu_
    std::uint64_t evictions_ = 0;
    std::uint64_t rejected_ = 0;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_CLOCK_CACHE_HH
