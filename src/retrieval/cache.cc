#include "retrieval/cache.hh"

#include <algorithm>

#include "base/random.hh"

namespace cachemind::retrieval {

RetrievalCache::RetrievalCache(std::size_t capacity,
                               std::size_t lock_shards)
    : capacity_(capacity)
{
    const std::size_t n =
        std::max<std::size_t>(1, std::min(lock_shards,
                                          std::max<std::size_t>(
                                              capacity, 1)));
    per_shard_capacity_ = capacity ? (capacity + n - 1) / n : 0;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        shards_.push_back(std::make_unique<LockShard>());
}

RetrievalCache::LockShard &
RetrievalCache::shardFor(const std::string &key)
{
    return *shards_[fnv1a(key) % shards_.size()];
}

RetrievalCache::BundlePtr
RetrievalCache::getOrCompute(const std::string &key,
                             const ComputeFn &compute, Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return compute();

    LockShard &s = shardFor(key);
    std::unique_lock<std::mutex> lock(s.mu);
    const auto it = s.entries.find(key);
    if (it != s.entries.end()) {
        if (it->second.ready) {
            // Hot hit: bump to the front of the LRU order.
            s.lru.splice(s.lru.begin(), s.lru, it->second.lru_pos);
            ++s.counters.hits;
            if (outcome)
                outcome->hit = true;
            return it->second.value;
        }
        // Another worker is assembling this bundle right now; wait on
        // its in-flight computation instead of re-running retrieval.
        std::shared_future<BundlePtr> pending = it->second.pending;
        ++s.counters.hits;
        lock.unlock();
        if (outcome)
            outcome->hit = true;
        return pending.get();
    }

    // Miss: claim the key, then compute outside the lock so other
    // keys (and other shards) keep flowing.
    std::promise<BundlePtr> promise;
    Entry claimed;
    claimed.pending = promise.get_future().share();
    s.entries.emplace(key, std::move(claimed));
    ++s.counters.misses;
    lock.unlock();

    BundlePtr value;
    try {
        value = compute();
    } catch (...) {
        lock.lock();
        s.entries.erase(key);
        lock.unlock();
        promise.set_exception(std::current_exception());
        throw;
    }

    std::uint64_t evicted = 0;
    lock.lock();
    Entry &entry = s.entries.find(key)->second;
    entry.value = value;
    entry.ready = true;
    s.lru.push_front(key);
    entry.lru_pos = s.lru.begin();
    // In-flight entries never sit in the LRU list, so eviction only
    // ever drops fully published bundles.
    while (s.lru.size() > per_shard_capacity_) {
        s.entries.erase(s.lru.back());
        s.lru.pop_back();
        ++evicted;
    }
    s.counters.evictions += evicted;
    lock.unlock();
    promise.set_value(value);

    if (outcome)
        outcome->evictions = evicted;
    return value;
}

RetrievalCache::BundlePtr
RetrievalCache::peek(const std::string &key, Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return nullptr;
    LockShard &s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.entries.find(key);
    if (it == s.entries.end() || !it->second.ready) {
        // Absent, or another flight is still assembling it: the
        // streaming caller retrieves on its own rather than waiting.
        ++s.counters.misses;
        return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_pos);
    ++s.counters.hits;
    if (outcome)
        outcome->hit = true;
    return it->second.value;
}

void
RetrievalCache::publish(const std::string &key, BundlePtr value,
                        Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return;
    LockShard &s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.entries.count(key))
        return; // resident or in flight: first copy wins
    Entry entry;
    entry.value = std::move(value);
    entry.ready = true;
    s.lru.push_front(key);
    entry.lru_pos = s.lru.begin();
    s.entries.emplace(key, std::move(entry));
    std::uint64_t evicted = 0;
    while (s.lru.size() > per_shard_capacity_) {
        s.entries.erase(s.lru.back());
        s.lru.pop_back();
        ++evicted;
    }
    s.counters.evictions += evicted;
    if (outcome)
        outcome->evictions = evicted;
}

std::size_t
RetrievalCache::size() const
{
    std::size_t total = 0;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->lru.size();
    }
    return total;
}

RetrievalCache::Counters
RetrievalCache::counters() const
{
    Counters total;
    for (const auto &s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total.hits += s->counters.hits;
        total.misses += s->counters.misses;
        total.evictions += s->counters.evictions;
    }
    return total;
}

} // namespace cachemind::retrieval
