#include "retrieval/cache.hh"

#include <utility>
#include <vector>

namespace cachemind::retrieval {

RetrievalCache::RetrievalCache(const Options &options)
    : hot_(options.capacity, options.hot_slots),
      secondary_(options.capacity > 0 &&
                         options.secondary_capacity_bytes > 0
                     ? std::make_unique<SecondaryTier>(
                           options.secondary_capacity_bytes)
                     : nullptr)
{
}

RetrievalCache::RetrievalCache(std::size_t capacity,
                               std::size_t lock_shards)
    : RetrievalCache(Options{capacity, 0, 0})
{
    (void)lock_shards;
}

std::uint64_t
RetrievalCache::admit(const std::string &key, BundlePtr value)
{
    std::uint64_t gone = 0;
    for (Displaced &d : hot_.insert(key, std::move(value))) {
        if (!secondary_ || !d.value) {
            ++gone;
            continue;
        }
        bool rejected = false;
        for (Displaced &sd :
             secondary_->insert(d.key, std::move(d.value))) {
            ++gone;
            if (sd.key == d.key)
                rejected = true;
        }
        if (!rejected)
            demotions_.fetch_add(1, std::memory_order_relaxed);
    }
    return gone;
}

RetrievalCache::BundlePtr
RetrievalCache::lookupTiers(const std::string &key,
                            std::uint64_t *evictions,
                            Outcome::Source *source)
{
    if (BundlePtr v = hot_.lookup(key)) {
        if (source)
            *source = Outcome::Source::Hot;
        return v;
    }
    if (!secondary_)
        return nullptr;
    BundlePtr v = secondary_->lookup(key);
    if (!v)
        return nullptr;
    // Exclusive tiers: the secondary released its copy; re-promote it
    // so the next lookup is a lock-free hot hit.
    promotions_.fetch_add(1, std::memory_order_relaxed);
    *evictions += admit(key, v);
    if (source)
        *source = Outcome::Source::Secondary;
    return v;
}

RetrievalCache::BundlePtr
RetrievalCache::getOrCompute(const std::string &key,
                             const ComputeFn &compute, Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return compute();

    // Fast path: lock-free hot probe (plus secondary) before any
    // single-flight bookkeeping.
    std::uint64_t evicted = 0;
    Outcome::Source source = Outcome::Source::None;
    if (BundlePtr v = lookupTiers(key, &evicted, &source)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        if (outcome) {
            outcome->hit = true;
            outcome->evictions = evicted;
            outcome->source = source;
        }
        return v;
    }

    std::unique_lock<std::mutex> lock(flight_mu_);
    auto it = flights_.find(key);
    if (it != flights_.end()) {
        // Another worker is assembling this bundle right now; wait on
        // its in-flight computation instead of re-running retrieval.
        std::shared_future<BundlePtr> pending = it->second;
        hits_.fetch_add(1, std::memory_order_relaxed);
        lock.unlock();
        if (outcome) {
            outcome->hit = true;
            outcome->source = Outcome::Source::Flight;
        }
        return pending.get();
    }
    // Re-probe under the flight lock: a flight that finished between
    // the probe above and here admitted its bundle before erasing its
    // table entry, so it is visible in the tiers now.
    if (BundlePtr v = lookupTiers(key, &evicted, &source)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        evictions_.fetch_add(evicted, std::memory_order_relaxed);
        lock.unlock();
        if (outcome) {
            outcome->hit = true;
            outcome->evictions = evicted;
            outcome->source = source;
        }
        return v;
    }

    // Miss: claim the key, then compute outside every lock so other
    // keys keep flowing.
    std::promise<BundlePtr> promise;
    flights_.emplace(key, promise.get_future().share());
    misses_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();

    BundlePtr value;
    try {
        value = compute();
    } catch (...) {
        lock.lock();
        flights_.erase(key);
        lock.unlock();
        promise.set_exception(std::current_exception());
        throw;
    }

    // Admit before erasing the flight: a lookup that misses the
    // flight table must find the tiers already populated. Degraded
    // (deadline-truncated) bundles are returned to their caller but
    // never admitted — they would poison every later request.
    evicted = (value && value->degraded) ? 0 : admit(key, value);
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    lock.lock();
    flights_.erase(key);
    lock.unlock();
    promise.set_value(value);

    if (outcome)
        outcome->evictions = evicted;
    return value;
}

RetrievalCache::BundlePtr
RetrievalCache::peek(const std::string &key, Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return nullptr;
    std::uint64_t evicted = 0;
    Outcome::Source source = Outcome::Source::None;
    BundlePtr v = lookupTiers(key, &evicted, &source);
    if (!v) {
        // Absent, or another flight is still assembling it: the
        // streaming caller retrieves on its own rather than waiting.
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (outcome) {
        outcome->hit = true;
        outcome->evictions = evicted;
        outcome->source = source;
    }
    return v;
}

void
RetrievalCache::publish(const std::string &key, BundlePtr value,
                        Outcome *outcome)
{
    if (outcome)
        *outcome = Outcome{};
    if (!enabled())
        return;
    if (value && value->degraded)
        return; // deadline-truncated evidence must never be shared
    {
        std::lock_guard<std::mutex> lock(flight_mu_);
        if (flights_.count(key))
            return; // the flight publishes when it lands
    }
    // Resident keys dedupe inside the tiers (first copy wins).
    const std::uint64_t evicted = admit(key, std::move(value));
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
    if (outcome)
        outcome->evictions = evicted;
}

std::size_t
RetrievalCache::size() const
{
    return hot_.entries() + (secondary_ ? secondary_->entries() : 0);
}

RetrievalCache::Counters
RetrievalCache::counters() const
{
    Counters total;
    total.hits = hits_.load(std::memory_order_relaxed);
    total.misses = misses_.load(std::memory_order_relaxed);
    total.evictions = evictions_.load(std::memory_order_relaxed);
    return total;
}

RetrievalCache::TieredCounters
RetrievalCache::tiered() const
{
    TieredCounters t;
    t.hot = hot_.stats();
    if (secondary_) {
        t.secondary = secondary_->stats();
        t.secondary_enabled = true;
    }
    t.promotions = promotions_.load(std::memory_order_relaxed);
    t.demotions = demotions_.load(std::memory_order_relaxed);
    return t;
}

const char *
cacheSourceName(RetrievalCache::Outcome::Source source)
{
    switch (source) {
      case RetrievalCache::Outcome::Source::None: return "miss";
      case RetrievalCache::Outcome::Source::Hot: return "hot_hit";
      case RetrievalCache::Outcome::Source::Secondary:
          return "secondary_promote";
      case RetrievalCache::Outcome::Source::Flight:
          return "single_flight_wait";
    }
    return "?";
}

} // namespace cachemind::retrieval
