/**
 * @file
 * The tier seam of the retrieval cache: one small interface every
 * storage tier implements, so the RetrievalCache orchestrator can
 * compose a lock-free-read hot tier (clock_cache.hh) over a
 * compressed secondary tier (secondary_tier.hh) — and future tiers
 * (disk, remote) can slot in underneath without touching the
 * orchestrator's single-flight / peek / publish protocol.
 *
 * A tier is a bounded key -> bundle store with its own admission and
 * eviction policy. Tiers do not know about each other: demotion is
 * the orchestrator's job, driven by the entries a higher tier
 * displaces on insert.
 */

#ifndef CACHEMIND_RETRIEVAL_CACHE_TIER_HH
#define CACHEMIND_RETRIEVAL_CACHE_TIER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Lifetime counters and occupancy for one cache tier. */
struct TierStats
{
    /** Lookups served / not served by this tier. */
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Entries admitted into the tier. */
    std::uint64_t insertions = 0;
    /** Entries displaced out of the tier by capacity pressure. */
    std::uint64_t evictions = 0;
    /** Offered entries the tier refused to admit (e.g. oversized). */
    std::uint64_t rejected = 0;
    /**
     * Stored entries whose payload failed to decode on lookup. Each
     * counts as a miss, the entry is dropped (the next request
     * recomputes and re-admits cleanly), and the broken bytes are
     * never surfaced. Zero for tiers that store decoded values.
     */
    std::uint64_t decode_failures = 0;

    /** Resident entries right now. */
    std::size_t entries = 0;
    /** Entry budget (0 when the tier budgets bytes, not entries). */
    std::size_t capacity = 0;

    /** Resident payload bytes (encoded form; byte-budgeted tiers). */
    std::size_t bytes = 0;
    /** Byte budget (0 when the tier budgets entries, not bytes). */
    std::size_t capacity_bytes = 0;

    /**
     * Cumulative encoded / decoded payload bytes over every admitted
     * entry; their ratio is the tier's compression ratio (< 1 means
     * the encoded form is smaller). Zero for uncompressed tiers.
     */
    std::uint64_t encoded_bytes_total = 0;
    std::uint64_t decoded_bytes_total = 0;

    double
    compressionRatio() const
    {
        return decoded_bytes_total == 0
                   ? 0.0
                   : static_cast<double>(encoded_bytes_total) /
                         static_cast<double>(decoded_bytes_total);
    }
};

/**
 * One storage tier of the retrieval cache.
 *
 * Thread-safety contract: lookup() may be called concurrently with
 * anything; insert() may be called concurrently with lookup() and
 * with other insert() calls. Implementations choose their own
 * synchronization (the clock tier's lookup is lock-free; the
 * secondary tier takes a short mutex — it is never on the hit path
 * of a hot-tier hit).
 */
class CacheTier
{
  public:
    using BundlePtr = std::shared_ptr<const ContextBundle>;

    /**
     * An entry displaced out of a tier by insert(). A non-null value
     * may be re-admitted into a lower tier (demotion); a null value
     * records an entry that is gone for good (the tier only held an
     * encoded form and dropped it, or refused the offered entry).
     */
    struct Displaced
    {
        std::string key;
        BundlePtr value;
    };

    virtual ~CacheTier() = default;

    virtual const char *name() const = 0;

    /**
     * Return the bundle for `key`, nullptr on miss. Tiers that store
     * an exclusive copy (the compressed secondary tier) remove the
     * entry on hit — the caller re-admits it above, so one tier holds
     * each resident key at a time.
     */
    virtual BundlePtr lookup(const std::string &key) = 0;

    /**
     * Admit `value` under `key`, first copy wins: when the key is
     * already resident the offered value is dropped and nothing is
     * displaced. Returns every entry that is *not* resident in this
     * tier after the call — victims displaced to make room, or the
     * offered entry itself when the tier refused it — so the caller
     * can demote them (or count them gone).
     */
    virtual std::vector<Displaced> insert(const std::string &key,
                                          BundlePtr value) = 0;

    /** Resident entries (approximate under concurrency). */
    virtual std::size_t entries() const = 0;

    /** Lifetime counters + occupancy snapshot. */
    virtual TierStats stats() const = 0;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_CACHE_TIER_HH
