/**
 * @file
 * The compressed secondary tier of the retrieval cache.
 *
 * Bundles demoted out of the hot clock tier land here in the binary
 * codec form (bundle_codec.hh) instead of being destroyed: a
 * long-tail question distribution mostly re-hits memory, and decoding
 * a stored bundle is orders of magnitude cheaper than re-running
 * retrieval. The tier budgets *bytes* (encoded size), not entries.
 *
 * The tier is exclusive: a hit removes the entry and returns the
 * decoded bundle for the orchestrator to re-promote into the hot
 * tier, so each resident key lives in exactly one tier. All
 * operations take one short mutex — this tier is only touched on the
 * hot tier's miss path, never on a hot hit.
 */

#ifndef CACHEMIND_RETRIEVAL_SECONDARY_TIER_HH
#define CACHEMIND_RETRIEVAL_SECONDARY_TIER_HH

#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "retrieval/cache_tier.hh"

namespace cachemind::retrieval {

/** Byte-budgeted store of codec-encoded demoted bundles. */
class SecondaryTier final : public CacheTier
{
  public:
    /** @param capacity_bytes Encoded-payload budget (exact). */
    explicit SecondaryTier(std::size_t capacity_bytes);

    const char *name() const override { return "secondary-compressed"; }

    /** Decode + remove on hit (caller re-promotes the bundle). */
    BundlePtr lookup(const std::string &key) override;

    std::vector<Displaced> insert(const std::string &key,
                                  BundlePtr value) override;

    std::size_t entries() const override;
    std::size_t bytes() const;
    std::size_t capacityBytes() const { return capacity_bytes_; }

    TierStats stats() const override;

  private:
    struct Entry
    {
        std::string encoded;
        std::list<std::string>::iterator order_it;
    };

    /** Charged footprint of one entry. Caller holds mu_. */
    static std::size_t chargeOf(const std::string &key,
                                const std::string &encoded)
    {
        return key.size() + encoded.size();
    }

    const std::size_t capacity_bytes_;

    mutable std::mutex mu_;
    std::size_t bytes_ = 0;
    /** Eviction order, oldest admission first. */
    std::list<std::string> order_;
    std::unordered_map<std::string, Entry> map_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t insertions_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t rejected_ = 0;
    std::uint64_t decode_failures_ = 0;
    std::uint64_t encoded_bytes_total_ = 0;
    std::uint64_t decoded_bytes_total_ = 0;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_SECONDARY_TIER_HH
