#include "retrieval/ranger.hh"

#include "retrieval/registry.hh"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <thread>

#include "base/failpoint.hh"
#include "base/parallel.hh"
#include "base/random.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

using query::AggKind;
using query::DslField;
using query::DslOp;
using query::DslProgram;
using query::FieldKind;
using query::ParsedQuery;
using query::QueryIntent;

RangerRetriever::RangerRetriever(db::ShardSet shards, RangerConfig cfg)
    : shards_(std::move(shards)), cfg_(std::move(cfg)),
      parser_(shards_.workloads(), shards_.policies()),
      interp_(shards_, cfg_.use_index ? query::ExecMode::Indexed
                                      : query::ExecMode::ReferenceScan)
{
}

std::string
RangerRetriever::resolveTraceKey(const ParsedQuery &q) const
{
    if (!q.hasWorkload())
        return "";
    const std::string policy =
        q.hasPolicy() ? q.policy() : cfg_.default_policy;
    const std::string key = db::shardKey(q.workload(), policy);
    return shards_.find(key) ? key : "";
}

namespace {

DslOp
aggToOp(AggKind agg)
{
    switch (agg) {
      case AggKind::Mean: return DslOp::MeanField;
      case AggKind::Sum: return DslOp::SumField;
      case AggKind::Min: return DslOp::MinField;
      case AggKind::Max: return DslOp::MaxField;
      case AggKind::Std: return DslOp::StdField;
      case AggKind::Count: return DslOp::CountRows;
    }
    return DslOp::MeanField;
}

DslField
fieldToDsl(FieldKind field)
{
    switch (field) {
      case FieldKind::ReuseDistance: return DslField::ReuseDistance;
      case FieldKind::EvictedReuseDistance:
        return DslField::EvictedReuseDistance;
      case FieldKind::Recency: return DslField::Recency;
      default: return DslField::ReuseDistance;
    }
}

} // namespace

std::vector<DslProgram>
RangerRetriever::planPrograms(const ParsedQuery &q,
                              const std::string &trace_key) const
{
    std::vector<DslProgram> progs;
    DslProgram base;
    base.trace_key = trace_key;
    base.pc = q.pc;
    base.address = q.address;
    base.set_id = q.set_id;
    base.limit = cfg_.select_limit;

    switch (q.intent) {
      case QueryIntent::HitMiss: {
        base.op = DslOp::SelectRows;
        progs.push_back(base);
        break;
      }
      case QueryIntent::MissRate: {
        base.op = DslOp::MissRate;
        progs.push_back(base);
        break;
      }
      case QueryIntent::Count: {
        base.op = DslOp::CountRows;
        progs.push_back(base);
        break;
      }
      case QueryIntent::Arithmetic: {
        base.op = aggToOp(q.agg);
        base.field = fieldToDsl(q.field);
        progs.push_back(base);
        break;
      }
      case QueryIntent::PolicyComparison: {
        // One program per policy shard of the queried workload.
        const db::ShardSet workload_shards =
            shards_.forWorkload(q.workload());
        for (const auto &policy : workload_shards.policies()) {
            DslProgram p = base;
            p.trace_key = db::shardKey(q.workload(), policy);
            p.op = DslOp::MissRate;
            progs.push_back(p);
        }
        break;
      }
      case QueryIntent::ListPcs: {
        base.op = DslOp::UniquePcs;
        progs.push_back(base);
        break;
      }
      case QueryIntent::ListSets: {
        base.op = DslOp::UniqueSets;
        progs.push_back(base);
        break;
      }
      case QueryIntent::SetStats: {
        base.op = DslOp::PerSetStats;
        progs.push_back(base);
        break;
      }
      case QueryIntent::TopPcs:
      case QueryIntent::PcStats: {
        base.op = DslOp::PerPcStats;
        progs.push_back(base);
        break;
      }
      case QueryIntent::Explain:
      case QueryIntent::Concept:
      case QueryIntent::CodeGen:
      case QueryIntent::Unknown: {
        // Ranger returns a narrow computed result: the metadata
        // numbers only. It does not assemble the descriptive context
        // (policy/workload prose, per-PC bundles, disassembly) that
        // the reasoning rubric rewards — the §6.2 crossover.
        base.op = DslOp::Metadata;
        progs.push_back(base);
        break;
      }
    }
    return progs;
}

void
RangerRetriever::corrupt(DslProgram &prog, std::uint64_t key) const
{
    if (cfg_.codegen_fidelity >= 1.0)
        return;
    if (keyedBernoulli(key, cfg_.codegen_fidelity))
        return; // faithful generation
    // Characteristic mis-generations, picked deterministically.
    switch (keyedPick(splitMix64(key), 3)) {
      case 0:
        // Wrong field (classic column confusion).
        prog.field = prog.field == DslField::ReuseDistance
                         ? DslField::Recency
                         : DslField::ReuseDistance;
        break;
      case 1:
        // Dropped address filter.
        prog.address.reset();
        break;
      default:
        // Wrong aggregate: mean <-> sum.
        if (prog.op == DslOp::MeanField)
            prog.op = DslOp::SumField;
        else if (prog.op == DslOp::SumField || prog.op == DslOp::StdField)
            prog.op = DslOp::MeanField;
        else if (prog.op == DslOp::CountRows)
            prog.op = DslOp::HitCount;
        break;
    }
}

ContextBundle
RangerRetriever::retrieve(const std::string &query)
{
    return retrieveParsed(parser_.parse(query));
}

std::string
RangerRetriever::cacheFingerprint() const
{
    return std::string("ranger|f=") +
           str::fixed(cfg_.codegen_fidelity, 6) +
           "|lim=" + std::to_string(cfg_.select_limit) +
           "|p=" + cfg_.default_policy +
           "|seed=" + std::to_string(cfg_.seed) +
           "|i=" + (cfg_.use_index ? "1" : "0");
}

std::string
RangerRetriever::cacheKey(const ParsedQuery &parsed) const
{
    std::string key = resolveTraceKey(parsed) + "|" + parsed.slotKey();
    // corrupt() keys its mis-generation draws on the raw text: two
    // phrasings of the same slots can execute different programs, so
    // below full fidelity only verbatim repeats may share a bundle.
    if (cfg_.codegen_fidelity < 1.0)
        key += "|raw=" + parsed.raw;
    return key;
}

ContextBundle
RangerRetriever::retrieveParsed(const ParsedQuery &parsed)
{
    NullEvidenceSink sink;
    return retrieveParsed(parsed, sink);
}

ContextBundle
RangerRetriever::retrieveParsed(const ParsedQuery &parsed,
                                EvidenceSink &sink)
{
    Stopwatch timer;
    ContextBundle bundle;
    bundle.retriever = name();
    bundle.parsed = parsed;
    const ParsedQuery &q = bundle.parsed;

    bundle.trace_key = resolveTraceKey(q);
    if (bundle.trace_key.empty()) {
        bundle.result_text =
            "No matching workload/policy table found for this query.";
        if (sink.active())
            sink.emit("overview", bundle.result_text);
        bundle.retrieval_ms = timer.milliseconds();
        return bundle;
    }
    const db::TraceEntry &entry = *shards_.find(bundle.trace_key);

    auto progs = planPrograms(q, bundle.trace_key);
    // Chunk text is only formatted for an active sink; the blocking
    // path (NullEvidenceSink) runs this code with zero streaming cost.
    if (sink.active()) {
        sink.emit("overview",
                  "Trace " + bundle.trace_key + ": planned " +
                      std::to_string(progs.size()) +
                      (progs.size() == 1 ? " program." : " programs."));
    }
    // Mis-generation draws stay keyed by the raw question text (the
    // paper's per-question codegen roll), independent of scheduling.
    const std::uint64_t qkey = hashCombine(fnv1a(q.raw), cfg_.seed);
    std::ostringstream code;
    std::ostringstream text;
    bool any_rows = false;

    // Corrupt every program up front — each draw is keyed by
    // (question, program index), never by execution order, so the
    // parallel schedule below cannot change which programs run.
    for (std::size_t pi = 0; pi < progs.size(); ++pi)
        corrupt(progs[pi], hashCombine(qkey, pi));

    // Execute: shard-parallel across the plan's programs (policy
    // comparisons run one program per policy shard). Results land in
    // plan order; the merge/stream loop below stays sequential, so
    // `program` chunks are emitted in plan order and the bundle is
    // byte-identical to sequential execution.
    std::vector<query::DslResult> results(progs.size());
    // Which programs actually ran: a blown deadline stops execution
    // early, and the merge below must only fold completed programs
    // into the (degraded) bundle. Each slot is written by exactly one
    // worker and read after the join.
    std::vector<unsigned char> done(progs.size(), 0);
    const std::size_t hw = std::max<std::size_t>(
        std::thread::hardware_concurrency(), 1);
    const std::size_t workers = std::min(
        progs.size(), cfg_.exec_threads ? cfg_.exec_threads : hw);
    if (workers > 1) {
        // Workers poll the sink's cancellation flag and deadline
        // between programs (the sequential path's cadence); the throw
        // itself happens on the caller thread after the join, so it
        // never crosses the pool boundary.
        std::atomic<bool> stop{false};
        parallelFor(workers, workers, [&](std::size_t w) {
            query::ExecScratch scratch;
            for (std::size_t pi = w; pi < progs.size(); pi += workers) {
                if (stop.load(std::memory_order_relaxed))
                    return;
                fail::maybeDelay("retrieve.section");
                if (sink.cancelled() || sink.expired()) {
                    stop.store(true, std::memory_order_relaxed);
                    return;
                }
                results[pi] = interp_.run(progs[pi], scratch);
                done[pi] = 1;
            }
        });
        throwIfCancelled(sink);
    } else {
        query::ExecScratch scratch;
        for (std::size_t pi = 0; pi < progs.size(); ++pi) {
            // Cooperative cancellation between DSL programs: a
            // dropped consumer aborts the rest of a multi-program
            // plan before the next interpreter run; a blown deadline
            // keeps the programs finished so far.
            fail::maybeDelay("retrieve.section");
            throwIfCancelled(sink);
            if (deadlineDegrade(sink, bundle))
                break;
            results[pi] = interp_.run(progs[pi], scratch);
            done[pi] = 1;
        }
    }

    for (std::size_t pi = 0; pi < progs.size(); ++pi) {
        throwIfCancelled(sink);
        if (!done[pi]) {
            // Skipped by a deadline stop: fold only executed programs.
            deadlineDegrade(sink, bundle);
            continue;
        }
        DslProgram &prog = progs[pi];
        const std::string python = renderProgramAsPython(prog);
        code << python;
        // Per-program result segment: accumulated into the bundle's
        // result text and emitted as one streamed chunk, so a
        // multi-program plan surfaces each result in plan order.
        std::ostringstream seg;
        const query::DslResult &res = results[pi];
        if (!res.ok) {
            seg << "[" << prog.trace_key << "] " << res.error << "\n";
            text << seg.str();
            if (sink.active())
                sink.emit("program", python + seg.str());
            continue;
        }
        if (res.number) {
            if (prog.op == DslOp::MissRate) {
                bundle.policy_numbers.push_back(PolicyNumber{
                    shards_.find(prog.trace_key)->policy, *res.number,
                    res.matched});
                bundle.policy_numbers_label = "miss rates";
                seg << "[" << prog.trace_key << "] miss rate = "
                    << str::percent(*res.number) << " over "
                    << res.matched << " accesses\n";
            } else {
                seg << "[" << prog.trace_key << "] "
                    << dslOpName(prog.op) << " = "
                    << str::fixed(*res.number, 4) << "\n";
            }
            bundle.computed = res.number;
            if (prog.op == DslOp::CountRows ||
                prog.op == DslOp::HitCount) {
                bundle.total_matches =
                    static_cast<std::size_t>(*res.number);
                bundle.total_is_exact = true;
            }
        }
        if (!res.rows.empty()) {
            any_rows = true;
            for (const auto &row : res.rows) {
                bundle.rows.push_back(row);
                seg << renderRowLine(row) << "\n";
            }
            bundle.total_matches = res.matched;
            bundle.total_is_exact = true;
        } else if (prog.op == DslOp::SelectRows) {
            bundle.total_matches = res.matched;
            bundle.total_is_exact = true;
        }
        if (!res.values.empty()) {
            bundle.values = res.values;
            bundle.values_complete = true;
            seg << "unique values: " << res.values.size() << "\n";
        }
        if (!res.pc_stats.empty()) {
            if (res.pc_stats.size() == 1 && q.pc) {
                bundle.pc_stats = res.pc_stats.front();
            } else {
                bundle.pc_stats_list = res.pc_stats;
                if (q.intent == QueryIntent::TopPcs) {
                    std::sort(bundle.pc_stats_list.begin(),
                              bundle.pc_stats_list.end(),
                              [](const db::PcStats &a,
                                 const db::PcStats &b) {
                                  if (a.misses != b.misses)
                                      return a.misses > b.misses;
                                  return a.pc < b.pc;
                              });
                    const std::size_t n = q.top_n ? q.top_n : 10;
                    if (bundle.pc_stats_list.size() > n)
                        bundle.pc_stats_list.resize(n);
                }
            }
        }
        if (!res.set_stats.empty())
            bundle.set_stats = res.set_stats;
        if (!res.text.empty()) {
            bundle.metadata = res.text;
            seg << res.text << "\n";
        }
        text << seg.str();
        if (sink.active())
            sink.emit("program", python + seg.str());
    }

    // Premise detection: an empty exact-match result is evidence.
    if (q.pc && bundle.total_is_exact && bundle.total_matches == 0 &&
        !any_rows && q.intent == QueryIntent::HitMiss) {
        bundle.premise_violation = true;
        bundle.premise_note = "Exact PC, Memory Address match not found "
                              "in " + bundle.trace_key + ".";
        for (const auto &key : shards_.keys()) {
            const auto *other = shards_.find(key);
            if (other && key != bundle.trace_key &&
                other->table.containsPc(*q.pc)) {
                bundle.premise_note += " PC appears in " + key + ".";
                break;
            }
        }
        if (sink.active())
            sink.emit("premise", bundle.premise_note);
    }

    // Narrow source context for per-access lookups only.
    if (q.pc && q.intent == QueryIntent::HitMiss &&
        entry.table.symbols()) {
        bundle.function_name =
            entry.table.symbols()->functionName(*q.pc);
        bundle.assembly = entry.table.symbols()->assemblyAround(*q.pc);
    }

    bundle.generated_code = code.str();
    bundle.result_text = text.str();
    bundle.retrieval_ms = timer.milliseconds();
    return bundle;
}

namespace {

// Factory knobs (ROADMAP "engine-level scenario configs"): codegen
// fidelity drives the Figure 5/6-style sweeps through the Builder.
// Every knob consumed here is part of cacheFingerprint() except
// exec_threads, which only schedules work (bundles are byte-identical
// at any worker count).
const RetrieverRegistrar ranger_registrar(
    "ranger",
    [](const db::ShardSet &shards, const RetrieverOptions &opts) {
        RangerConfig cfg;
        cfg.codegen_fidelity =
            opts.getDouble("fidelity", cfg.codegen_fidelity);
        cfg.select_limit = opts.getSize("select_limit", cfg.select_limit);
        cfg.default_policy =
            opts.get("default_policy", cfg.default_policy);
        cfg.seed = opts.getSize("seed", cfg.seed);
        cfg.use_index = opts.getBool("use_index", cfg.use_index);
        cfg.exec_threads =
            opts.getSize("exec_threads", cfg.exec_threads);
        return std::make_unique<RangerRetriever>(shards, cfg);
    });

} // namespace

} // namespace cachemind::retrieval
