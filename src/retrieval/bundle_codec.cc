#include "retrieval/bundle_codec.hh"

#include <cstring>
#include <unordered_map>
#include <vector>

namespace cachemind::retrieval {
namespace {

constexpr char kMagic0 = 'C';
constexpr char kMagic1 = 'B';
constexpr std::uint8_t kVersion = 1;

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/**
 * Builds the payload while interning every string into the table;
 * finish() prepends header + table so decode can resolve references
 * in one forward pass.
 */
class Encoder
{
  public:
    void
    u64(std::uint64_t v)
    {
        while (v >= 0x80) {
            payload_.push_back(static_cast<char>(v | 0x80));
            v >>= 7;
        }
        payload_.push_back(static_cast<char>(v));
    }

    void i64(std::int64_t v) { u64(zigzag(v)); }
    void boolean(bool v) { u64(v ? 1 : 0); }

    void
    f64(double v)
    {
        // Raw little-endian bits: bit-exact round trip, NaN included.
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        char buf[8];
        for (int i = 0; i < 8; ++i)
            buf[i] = static_cast<char>(bits >> (8 * i));
        payload_.append(buf, 8);
    }

    void
    str(const std::string &s)
    {
        auto [it, inserted] = ids_.emplace(s, table_.size());
        if (inserted)
            table_.push_back(s);
        u64(it->second);
    }

    template <typename T, typename Fn>
    void
    vec(const std::vector<T> &v, Fn &&each)
    {
        u64(v.size());
        for (const T &item : v)
            each(item);
    }

    std::string
    finish() &&
    {
        std::string out;
        out.push_back(kMagic0);
        out.push_back(kMagic1);
        out.push_back(static_cast<char>(kVersion));
        std::string head;
        std::swap(head, payload_);
        u64(table_.size());
        for (const std::string &s : table_) {
            u64(s.size());
            payload_.append(s);
        }
        out += payload_;
        out += head;
        return out;
    }

  private:
    std::string payload_;
    std::vector<std::string> table_;
    std::unordered_map<std::string, std::uint64_t> ids_;
};

/** Thrown on any malformed read; decodeBundle maps it to nullopt. */
struct Corrupt
{
};

class Decoder
{
  public:
    explicit Decoder(const std::string &data)
        : p_(data.data()), end_(data.data() + data.size())
    {
        if (end_ - p_ < 3 || p_[0] != kMagic0 || p_[1] != kMagic1 ||
            static_cast<std::uint8_t>(p_[2]) != kVersion)
            throw Corrupt{};
        p_ += 3;
        const std::uint64_t n = u64();
        table_.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t len = u64();
            if (static_cast<std::uint64_t>(end_ - p_) < len)
                throw Corrupt{};
            table_.emplace_back(p_, len);
            p_ += len;
        }
    }

    std::uint64_t
    u64()
    {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            if (p_ == end_ || shift > 63)
                throw Corrupt{};
            const std::uint8_t byte = static_cast<std::uint8_t>(*p_++);
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if (!(byte & 0x80))
                return v;
            shift += 7;
        }
    }

    std::int64_t i64() { return unzigzag(u64()); }
    bool boolean() { return u64() != 0; }

    double
    f64()
    {
        if (end_ - p_ < 8)
            throw Corrupt{};
        std::uint64_t bits = 0;
        for (int i = 0; i < 8; ++i)
            bits |= static_cast<std::uint64_t>(
                        static_cast<std::uint8_t>(p_[i]))
                    << (8 * i);
        p_ += 8;
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    const std::string &
    str()
    {
        const std::uint64_t id = u64();
        if (id >= table_.size())
            throw Corrupt{};
        return table_[id];
    }

    template <typename T, typename Fn>
    std::vector<T>
    vec(Fn &&each)
    {
        const std::uint64_t n = u64();
        // A count can't exceed one element per remaining payload byte;
        // without this cap a corrupt count could reserve petabytes.
        if (n > static_cast<std::uint64_t>(end_ - p_))
            throw Corrupt{};
        std::vector<T> out;
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(each());
        return out;
    }

  private:
    const char *p_;
    const char *end_;
    std::vector<std::string> table_;
};

void
encodeParsed(Encoder &e, const query::ParsedQuery &q)
{
    e.u64(static_cast<std::uint64_t>(q.intent));
    e.boolean(q.pc.has_value());
    if (q.pc)
        e.u64(*q.pc);
    e.boolean(q.address.has_value());
    if (q.address)
        e.u64(*q.address);
    e.boolean(q.set_id.has_value());
    if (q.set_id)
        e.u64(*q.set_id);
    e.vec(q.workloads, [&](const std::string &s) { e.str(s); });
    e.vec(q.policies, [&](const std::string &s) { e.str(s); });
    e.u64(static_cast<std::uint64_t>(q.agg));
    e.u64(static_cast<std::uint64_t>(q.field));
    e.u64(q.top_n);
    e.str(q.raw);
}

query::ParsedQuery
decodeParsed(Decoder &d)
{
    query::ParsedQuery q;
    q.intent = static_cast<query::QueryIntent>(d.u64());
    if (d.boolean())
        q.pc = d.u64();
    if (d.boolean())
        q.address = d.u64();
    if (d.boolean())
        q.set_id = static_cast<std::uint32_t>(d.u64());
    q.workloads = d.vec<std::string>([&] { return d.str(); });
    q.policies = d.vec<std::string>([&] { return d.str(); });
    q.agg = static_cast<query::AggKind>(d.u64());
    q.field = static_cast<query::FieldKind>(d.u64());
    q.top_n = static_cast<std::size_t>(d.u64());
    q.raw = d.str();
    return q;
}

void
encodeRow(Encoder &e, const db::AccessRow &r)
{
    e.u64(r.index);
    e.u64(r.program_counter);
    e.u64(r.memory_address);
    e.u64(r.cache_set_id);
    e.boolean(r.is_miss);
    e.boolean(r.bypassed);
    e.u64(static_cast<std::uint64_t>(r.miss_type));
    e.boolean(r.has_victim);
    e.u64(r.evicted_address);
    e.i64(r.accessed_reuse_distance);
    e.i64(r.accessed_recency);
    e.i64(r.evicted_reuse_distance);
    e.boolean(r.wrong_eviction);
    e.str(r.recency_text);
    e.str(r.function_name);
    e.str(r.function_code);
    e.str(r.assembly_code);
    e.vec(r.current_cache_lines, [&](const db::PcAddr &pa) {
        e.u64(pa.pc);
        e.u64(pa.address);
    });
    e.vec(r.cache_line_eviction_scores,
          [&](std::uint64_t v) { e.u64(v); });
    e.vec(r.recent_access_history, [&](const db::PcAddr &pa) {
        e.u64(pa.pc);
        e.u64(pa.address);
    });
}

db::AccessRow
decodeRow(Decoder &d)
{
    db::AccessRow r;
    r.index = d.u64();
    r.program_counter = d.u64();
    r.memory_address = d.u64();
    r.cache_set_id = static_cast<std::uint32_t>(d.u64());
    r.is_miss = d.boolean();
    r.bypassed = d.boolean();
    r.miss_type = static_cast<sim::MissType>(d.u64());
    r.has_victim = d.boolean();
    r.evicted_address = d.u64();
    r.accessed_reuse_distance = d.i64();
    r.accessed_recency = d.i64();
    r.evicted_reuse_distance = d.i64();
    r.wrong_eviction = d.boolean();
    r.recency_text = d.str();
    r.function_name = d.str();
    r.function_code = d.str();
    r.assembly_code = d.str();
    r.current_cache_lines = d.vec<db::PcAddr>([&] {
        db::PcAddr pa;
        pa.pc = d.u64();
        pa.address = d.u64();
        return pa;
    });
    r.cache_line_eviction_scores =
        d.vec<std::uint64_t>([&] { return d.u64(); });
    r.recent_access_history = d.vec<db::PcAddr>([&] {
        db::PcAddr pa;
        pa.pc = d.u64();
        pa.address = d.u64();
        return pa;
    });
    return r;
}

void
encodePcStats(Encoder &e, const db::PcStats &s)
{
    e.u64(s.pc);
    e.u64(s.accesses);
    e.u64(s.hits);
    e.u64(s.misses);
    e.u64(s.evictions_caused);
    e.u64(s.wrong_evictions);
    e.u64(s.never_reused);
    e.f64(s.mean_reuse_distance);
    e.f64(s.reuse_distance_stdev);
    e.f64(s.mean_evicted_reuse_distance);
    e.f64(s.mean_recency);
}

db::PcStats
decodePcStats(Decoder &d)
{
    db::PcStats s;
    s.pc = d.u64();
    s.accesses = d.u64();
    s.hits = d.u64();
    s.misses = d.u64();
    s.evictions_caused = d.u64();
    s.wrong_evictions = d.u64();
    s.never_reused = d.u64();
    s.mean_reuse_distance = d.f64();
    s.reuse_distance_stdev = d.f64();
    s.mean_evicted_reuse_distance = d.f64();
    s.mean_recency = d.f64();
    return s;
}

std::size_t
stringBytes(const std::string &s)
{
    return sizeof(std::string) + s.capacity();
}

} // namespace

std::string
encodeBundle(const ContextBundle &b)
{
    Encoder e;
    e.str(b.retriever);
    encodeParsed(e, b.parsed);
    e.str(b.trace_key);
    e.vec(b.rows, [&](const db::AccessRow &r) { encodeRow(e, r); });
    e.u64(b.total_matches);
    e.boolean(b.total_is_exact);
    e.boolean(b.pc_stats.has_value());
    if (b.pc_stats)
        encodePcStats(e, *b.pc_stats);
    e.vec(b.pc_stats_list,
          [&](const db::PcStats &s) { encodePcStats(e, s); });
    e.vec(b.set_stats, [&](const db::SetStats &s) {
        e.u64(s.set);
        e.u64(s.accesses);
        e.u64(s.hits);
    });
    e.vec(b.policy_numbers, [&](const PolicyNumber &p) {
        e.str(p.policy);
        e.f64(p.value);
        e.u64(p.samples);
    });
    e.str(b.policy_numbers_label);
    e.str(b.metadata);
    e.str(b.workload_description);
    e.str(b.policy_description);
    e.str(b.function_name);
    e.str(b.function_code);
    e.str(b.assembly);
    e.vec(b.values, [&](std::uint64_t v) { e.u64(v); });
    e.boolean(b.values_complete);
    e.boolean(b.computed.has_value());
    if (b.computed)
        e.f64(*b.computed);
    e.str(b.generated_code);
    e.str(b.result_text);
    e.boolean(b.premise_violation);
    e.str(b.premise_note);
    e.f64(b.retrieval_ms);
    return std::move(e).finish();
}

std::optional<ContextBundle>
decodeBundle(const std::string &data)
{
    try {
        Decoder d(data);
        ContextBundle b;
        b.retriever = d.str();
        b.parsed = decodeParsed(d);
        b.trace_key = d.str();
        b.rows = d.vec<db::AccessRow>([&] { return decodeRow(d); });
        b.total_matches = static_cast<std::size_t>(d.u64());
        b.total_is_exact = d.boolean();
        if (d.boolean())
            b.pc_stats = decodePcStats(d);
        b.pc_stats_list =
            d.vec<db::PcStats>([&] { return decodePcStats(d); });
        b.set_stats = d.vec<db::SetStats>([&] {
            db::SetStats s;
            s.set = static_cast<std::uint32_t>(d.u64());
            s.accesses = d.u64();
            s.hits = d.u64();
            return s;
        });
        b.policy_numbers = d.vec<PolicyNumber>([&] {
            PolicyNumber p;
            p.policy = d.str();
            p.value = d.f64();
            p.samples = d.u64();
            return p;
        });
        b.policy_numbers_label = d.str();
        b.metadata = d.str();
        b.workload_description = d.str();
        b.policy_description = d.str();
        b.function_name = d.str();
        b.function_code = d.str();
        b.assembly = d.str();
        b.values = d.vec<std::uint64_t>([&] { return d.u64(); });
        b.values_complete = d.boolean();
        if (d.boolean())
            b.computed = d.f64();
        b.generated_code = d.str();
        b.result_text = d.str();
        b.premise_violation = d.boolean();
        b.premise_note = d.str();
        b.retrieval_ms = d.f64();
        return b;
    } catch (const Corrupt &) {
        return std::nullopt;
    }
}

std::size_t
approxBundleBytes(const ContextBundle &b)
{
    std::size_t n = sizeof(ContextBundle);
    n += b.retriever.capacity() + b.trace_key.capacity();
    n += b.parsed.raw.capacity();
    for (const std::string &s : b.parsed.workloads)
        n += stringBytes(s);
    for (const std::string &s : b.parsed.policies)
        n += stringBytes(s);
    for (const db::AccessRow &r : b.rows) {
        n += sizeof(db::AccessRow);
        n += r.recency_text.capacity() + r.function_name.capacity() +
             r.function_code.capacity() + r.assembly_code.capacity();
        n += r.current_cache_lines.capacity() * sizeof(db::PcAddr);
        n += r.cache_line_eviction_scores.capacity() *
             sizeof(std::uint64_t);
        n += r.recent_access_history.capacity() * sizeof(db::PcAddr);
    }
    n += b.pc_stats_list.capacity() * sizeof(db::PcStats);
    n += b.set_stats.capacity() * sizeof(db::SetStats);
    for (const PolicyNumber &p : b.policy_numbers)
        n += sizeof(PolicyNumber) + p.policy.capacity();
    n += b.policy_numbers_label.capacity() + b.metadata.capacity() +
         b.workload_description.capacity() +
         b.policy_description.capacity() + b.function_name.capacity() +
         b.function_code.capacity() + b.assembly.capacity();
    n += b.values.capacity() * sizeof(std::uint64_t);
    n += b.generated_code.capacity() + b.result_text.capacity() +
         b.premise_note.capacity();
    return n;
}

} // namespace cachemind::retrieval
