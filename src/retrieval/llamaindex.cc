#include "retrieval/llamaindex.hh"

#include "retrieval/registry.hh"

#include <sstream>

#include "base/stopwatch.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

LlamaIndexRetriever::LlamaIndexRetriever(db::ShardSet shards,
                                         LlamaIndexConfig cfg)
    : shards_(std::move(shards)), cfg_(std::move(cfg)),
      parser_(shards_.workloads(), shards_.policies()),
      embedder_(cfg_.dims)
{
    index_ = std::make_unique<text::VectorIndex>(embedder_);
    buildIndex();
}

void
LlamaIndexRetriever::buildIndex()
{
    for (const auto &key : shards_.keys()) {
        const auto *entry = shards_.find(key);
        // Summary document per trace.
        {
            std::ostringstream os;
            os << "TRACE_ID: " << key << "\nDESCRIPTION: "
               << entry->description << "\n" << entry->metadata;
            index_->add(os.str(), key + "#summary");
        }
        // Row chunks.
        const auto &table = entry->table;
        for (std::size_t i = 0; i < table.size();
             i += cfg_.row_stride) {
            std::ostringstream os;
            os << "TRACE_ID: " << key << "\nprogram_counter="
               << str::hex(table.pcAt(i))
               << ", memory_address=" << str::hex(table.addressAt(i))
               << ", evict="
               << (table.isMissAt(i) ? "Cache Miss" : "Cache Hit")
               << ", cache_set_id=" << table.setAt(i)
               << ", recency=" << table.recencyTextAt(i);
            index_->add(os.str(),
                        key + "#row=" + std::to_string(i));
        }
    }
}

ContextBundle
LlamaIndexRetriever::retrieve(const std::string &query)
{
    Stopwatch timer;
    ContextBundle bundle;
    bundle.retriever = name();
    bundle.parsed = parser_.parse(query);

    const auto hits = index_->topK(query, cfg_.top_k);
    std::ostringstream text;
    for (const auto &hit : hits) {
        text << str::fixed(hit.score, 6) << "\n"
             << index_->payload(hit.doc) << "\n---\n";
        // Expose the best hit's trace for bookkeeping.
        if (bundle.trace_key.empty()) {
            const auto &tag = index_->tag(hit.doc);
            const auto pos = tag.find('#');
            bundle.trace_key =
                pos == std::string::npos ? tag : tag.substr(0, pos);
        }
    }
    bundle.result_text = text.str();
    bundle.retrieval_ms = timer.milliseconds();
    return bundle;
}

namespace {

const RetrieverRegistrar llamaindex_registrar(
    "llamaindex", [](const db::ShardSet &shards) {
        return std::make_unique<LlamaIndexRetriever>(shards);
    });

} // namespace

} // namespace cachemind::retrieval
