#include "retrieval/llamaindex.hh"

#include "retrieval/registry.hh"

#include <sstream>

#include "base/failpoint.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

LlamaIndexRetriever::LlamaIndexRetriever(db::ShardSet shards,
                                         LlamaIndexConfig cfg)
    : shards_(std::move(shards)), cfg_(std::move(cfg)),
      parser_(shards_.workloads(), shards_.policies()),
      embedder_(cfg_.dims)
{
    index_ = std::make_unique<text::VectorIndex>(embedder_);
    buildIndex();
}

void
LlamaIndexRetriever::buildIndex()
{
    for (const auto &key : shards_.keys()) {
        const auto *entry = shards_.find(key);
        // Summary document per trace.
        {
            std::ostringstream os;
            os << "TRACE_ID: " << key << "\nDESCRIPTION: "
               << entry->description << "\n" << entry->metadata;
            index_->add(os.str(), key + "#summary");
        }
        // Row chunks.
        const auto &table = entry->table;
        for (std::size_t i = 0; i < table.size();
             i += cfg_.row_stride) {
            std::ostringstream os;
            os << "TRACE_ID: " << key << "\nprogram_counter="
               << str::hex(table.pcAt(i))
               << ", memory_address=" << str::hex(table.addressAt(i))
               << ", evict="
               << (table.isMissAt(i) ? "Cache Miss" : "Cache Hit")
               << ", cache_set_id=" << table.setAt(i)
               << ", recency=" << table.recencyTextAt(i);
            index_->add(os.str(),
                        key + "#row=" + std::to_string(i));
        }
    }
}

ContextBundle
LlamaIndexRetriever::retrieve(const std::string &query)
{
    return retrieveParsed(parser_.parse(query));
}

std::string
LlamaIndexRetriever::cacheFingerprint() const
{
    return std::string("llamaindex|s=") +
           std::to_string(cfg_.row_stride) +
           "|k=" + std::to_string(cfg_.top_k) +
           "|d=" + std::to_string(cfg_.dims);
}

std::string
LlamaIndexRetriever::cacheKey(const query::ParsedQuery &parsed) const
{
    // Cosine retrieval is a function of the raw text (the query
    // embedding), so slot-equal paraphrases can score chunks
    // differently and must not share; verbatim repeats still hit.
    return "raw=" + parsed.raw;
}

ContextBundle
LlamaIndexRetriever::retrieveParsed(const query::ParsedQuery &parsed)
{
    NullEvidenceSink sink;
    return retrieveParsed(parsed, sink);
}

ContextBundle
LlamaIndexRetriever::retrieveParsed(const query::ParsedQuery &parsed,
                                    EvidenceSink &sink)
{
    Stopwatch timer;
    ContextBundle bundle;
    bundle.retriever = name();
    bundle.parsed = parsed;

    const auto hits = index_->topK(parsed.raw, cfg_.top_k);
    std::ostringstream text;
    for (const auto &hit : hits) {
        fail::maybeDelay("retrieve.section");
        // A blown deadline keeps the hits formatted so far (partial
        // evidence beats none); a dead consumer aborts outright.
        if (deadlineDegrade(sink, bundle))
            break;
        // Cooperative cancellation between hits: stop formatting
        // payloads once the stream's consumer went away.
        throwIfCancelled(sink);
        std::ostringstream chunk;
        chunk << str::fixed(hit.score, 6) << "\n"
              << index_->payload(hit.doc) << "\n---\n";
        const std::string chunk_text = chunk.str();
        text << chunk_text;
        if (sink.active())
            sink.emit("hit", chunk_text);
        // Expose the best hit's trace for bookkeeping.
        if (bundle.trace_key.empty()) {
            const auto &tag = index_->tag(hit.doc);
            const auto pos = tag.find('#');
            bundle.trace_key =
                pos == std::string::npos ? tag : tag.substr(0, pos);
        }
    }
    bundle.result_text = text.str();
    bundle.retrieval_ms = timer.milliseconds();
    return bundle;
}

namespace {

// Factory knobs (ROADMAP "engine-level scenario configs"); all three
// shape the index and are part of cacheFingerprint().
const RetrieverRegistrar llamaindex_registrar(
    "llamaindex",
    [](const db::ShardSet &shards, const RetrieverOptions &opts) {
        LlamaIndexConfig cfg;
        cfg.row_stride = opts.getSize("row_stride", cfg.row_stride);
        cfg.top_k = opts.getSize("top_k", cfg.top_k);
        cfg.dims = opts.getSize("dims", cfg.dims);
        return std::make_unique<LlamaIndexRetriever>(shards, cfg);
    });

} // namespace

} // namespace cachemind::retrieval
