/**
 * @file
 * LlamaIndex-style baseline: pure dense-embedding retrieval over
 * chunked trace documents (§6.2, Figure 9).
 *
 * Every Nth trace row is rendered to text and embedded, along with
 * per-trace summary documents. A query retrieves the top-k chunks by
 * cosine similarity — no symbolic filtering. On microarchitectural
 * traces this fails in exactly the way the paper reports: rows that
 * differ only in hex digits embed almost identically, so the top hits
 * are plausible but wrong rows.
 */

#ifndef CACHEMIND_RETRIEVAL_LLAMAINDEX_HH
#define CACHEMIND_RETRIEVAL_LLAMAINDEX_HH

#include <memory>

#include "db/shard.hh"
#include "query/parser.hh"
#include "retrieval/context.hh"
#include "text/embedding.hh"

namespace cachemind::retrieval {

/** Baseline configuration. */
struct LlamaIndexConfig
{
    /** Index every Nth row of each trace (memory/time bound). */
    std::size_t row_stride = 16;
    /** Chunks returned per query. */
    std::size_t top_k = 3;
    /** Embedding dimensionality. */
    std::size_t dims = 128;
};

/** The dense-retrieval baseline. */
class LlamaIndexRetriever : public Retriever
{
  public:
    LlamaIndexRetriever(db::ShardSet shards,
                        LlamaIndexConfig cfg = LlamaIndexConfig{});

    const char *name() const override { return "llamaindex"; }
    /** Parsing shim: parse the question, then retrieveParsed. */
    ContextBundle retrieve(const std::string &query) override;
    /** Blocking entry: the streaming path with a discarding sink. */
    ContextBundle
    retrieveParsed(const query::ParsedQuery &parsed) override;
    /**
     * Primary implementation: one chunk per retrieved top-k hit, in
     * similarity order. Byte-identical bundle to the blocking
     * overload.
     */
    ContextBundle retrieveParsed(const query::ParsedQuery &parsed,
                                 EvidenceSink &sink) override;

    /** "llamaindex" + the index-shaping config. */
    std::string cacheFingerprint() const override;
    /**
     * Dense retrieval embeds the raw question text, not the slots, so
     * only verbatim repeats may share a bundle.
     */
    std::string
    cacheKey(const query::ParsedQuery &parsed) const override;

    std::size_t indexedChunks() const { return index_->size(); }

  private:
    void buildIndex();

    db::ShardSet shards_;
    LlamaIndexConfig cfg_;
    query::NlQueryParser parser_;
    text::HashEmbedder embedder_;
    std::unique_ptr<text::VectorIndex> index_;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_LLAMAINDEX_HH
