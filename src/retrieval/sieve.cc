#include "retrieval/sieve.hh"

#include "retrieval/registry.hh"

#include <algorithm>

#include "base/failpoint.hh"
#include "base/stopwatch.hh"
#include "base/str.hh"

namespace cachemind::retrieval {

using query::ParsedQuery;
using query::QueryIntent;

SieveRetriever::SieveRetriever(db::ShardSet shards, SieveConfig cfg)
    : shards_(std::move(shards)), cfg_(std::move(cfg)),
      parser_(shards_.workloads(), shards_.policies())
{
}

std::string
SieveRetriever::resolveTraceKey(const ParsedQuery &q) const
{
    if (!q.hasWorkload())
        return "";
    const std::string policy =
        q.hasPolicy() ? q.policy() : cfg_.default_policy;
    const std::string key = db::shardKey(q.workload(), policy);
    return shards_.find(key) ? key : "";
}

void
SieveRetriever::checkPremise(const ParsedQuery &q,
                             const db::TraceEntry &entry,
                             ContextBundle &bundle) const
{
    if (q.pc && !entry.table.containsPc(*q.pc)) {
        bundle.premise_violation = true;
        bundle.premise_note =
            "PC " + str::hex(*q.pc) + " does not appear in trace " +
            bundle.trace_key + ".";
        // Look for the PC in other workloads to aid the rejection.
        for (const auto &key : shards_.keys()) {
            const auto *other = shards_.find(key);
            if (other && key != bundle.trace_key &&
                other->table.containsPc(*q.pc)) {
                bundle.premise_note +=
                    " It appears in " + key + " instead.";
                break;
            }
        }
        return;
    }
    if (q.pc && q.address) {
        const auto rows = filterRows(entry.table, &*q.pc, &*q.address, 1);
        if (rows.empty()) {
            // The tuple never occurs even though the PC exists.
            bool addr_known = entry.table.containsAddress(*q.address);
            bundle.premise_violation = true;
            bundle.premise_note =
                "PC " + str::hex(*q.pc) + " never accesses address " +
                str::hex(*q.address) + " in " + bundle.trace_key +
                (addr_known ? " (the address is touched by other PCs)."
                            : " (the address never appears at all).");
        }
    }
}

namespace {

/** Truncated unique-value listing into the bundle. */
template <typename T>
void
fillListing(const std::vector<T> &values, std::size_t limit,
            ContextBundle &bundle)
{
    bundle.values_complete = values.size() <= limit;
    for (std::size_t i = 0; i < std::min(values.size(), limit); ++i)
        bundle.values.push_back(values[i]);
}

} // namespace

std::vector<std::uint32_t>
SieveRetriever::filterRows(const db::TraceTable &table,
                           const std::uint64_t *pc,
                           const std::uint64_t *address,
                           std::size_t limit) const
{
    return cfg_.use_index ? table.filter(pc, address, limit)
                          : table.filterScan(pc, address, limit);
}

void
SieveRetriever::fillSourceContext(std::uint64_t pc,
                                  const db::TraceEntry &entry,
                                  ContextBundle &bundle) const
{
    const trace::SymbolTable *symbols = entry.table.symbols();
    if (!symbols)
        return;
    bundle.function_name = symbols->functionName(pc);
    bundle.function_code = symbols->sourceFor(pc);
    bundle.assembly = symbols->assemblyAround(pc);
}

ContextBundle
SieveRetriever::retrieve(const std::string &query)
{
    return retrieveParsed(parser_.parse(query));
}

std::string
SieveRetriever::cacheFingerprint() const
{
    return std::string("sieve|w=") +
           std::to_string(cfg_.evidence_window) +
           "|l=" + std::to_string(cfg_.listing_limit) +
           "|p=" + cfg_.default_policy +
           "|d=" + (cfg_.degrade_filters ? "1" : "0") +
           "|i=" + (cfg_.use_index ? "1" : "0");
}

std::string
SieveRetriever::cacheKey(const ParsedQuery &parsed) const
{
    // Everything Sieve assembles is a pure function of the slots, the
    // resolved shard, and the config (in the fingerprint) — never of
    // the raw phrasing — so slot-equal questions share bundles.
    return resolveTraceKey(parsed) + "|" + parsed.slotKey();
}

ContextBundle
SieveRetriever::retrieveParsed(const ParsedQuery &parsed)
{
    NullEvidenceSink sink;
    return retrieveParsed(parsed, sink);
}

ContextBundle
SieveRetriever::retrieveParsed(const ParsedQuery &parsed,
                               EvidenceSink &sink)
{
    Stopwatch timer;
    ContextBundle bundle;
    bundle.retriever = name();
    bundle.parsed = parsed;
    const ParsedQuery &q = bundle.parsed;

    bundle.trace_key = resolveTraceKey(q);
    if (bundle.trace_key.empty()) {
        // Could not resolve a trace: provide what global context we
        // can (descriptions of everything mentioned).
        for (const auto &key : shards_.keys()) {
            const auto *entry = shards_.find(key);
            if (q.hasWorkload() && entry->workload == q.workload()) {
                bundle.workload_description = entry->description;
                break;
            }
        }
        if (sink.active()) {
            sink.emit("overview",
                      bundle.workload_description.empty()
                          ? "No matching workload/policy trace "
                            "resolved."
                          : bundle.workload_description);
        }
        bundle.retrieval_ms = timer.milliseconds();
        return bundle;
    }

    const db::TraceEntry &entry = *shards_.find(bundle.trace_key);
    bundle.workload_description = entry.description;
    bundle.policy_description =
        "Policy '" + entry.policy + "' on workload '" + entry.workload +
        "'.";
    // First evidence on the wire before any heavyweight per-shard
    // work: the overview goes out ahead of the premise scan and the
    // once-per-shard StatsExpert build below, so a streaming consumer
    // sees the resolved trace at a fraction of full retrieval time.
    // Chunk text is only ever formatted for an active sink — the
    // blocking path (NullEvidenceSink) skips it entirely.
    if (sink.active()) {
        sink.emit("overview", "Trace " + bundle.trace_key + ". " +
                                  bundle.workload_description + " " +
                                  bundle.policy_description);
    }

    // Cooperative cancellation between evidence sections: a dropped
    // consumer (disconnected serving session) aborts the remaining
    // scan/stats work instead of assembling evidence nobody reads. A
    // blown deadline degrades instead: return what is assembled so
    // far, marked partial.
    fail::maybeDelay("retrieve.section");
    throwIfCancelled(sink);
    if (deadlineDegrade(sink, bundle)) {
        bundle.retrieval_ms = timer.milliseconds();
        return bundle;
    }

    if (!cfg_.degrade_filters) {
        checkPremise(q, entry, bundle);
        if (bundle.premise_violation && sink.active())
            sink.emit("premise", bundle.premise_note);
    }

    // Symbolic PC/address slice (bounded evidence window). Sieve stops
    // scanning at the window: it does not know the full match count.
    if (q.pc || q.address) {
        const std::uint64_t *pc = q.pc ? &*q.pc : nullptr;
        const std::uint64_t *addr =
            (q.address && !cfg_.degrade_filters) ? &*q.address
                                                 : nullptr;
        const auto idxs =
            filterRows(entry.table, pc, addr, cfg_.evidence_window);
        for (const auto i : idxs)
            bundle.rows.push_back(entry.table.row(i));
        bundle.total_matches = bundle.rows.size();
        bundle.total_is_exact = false;
        if (sink.active()) {
            std::string slice;
            for (const auto &row : bundle.rows)
                slice += renderRowLine(row) + "\n";
            slice += "window matches: " +
                     std::to_string(bundle.total_matches);
            sink.emit("slice", slice);
        }
    }

    fail::maybeDelay("retrieve.section");
    throwIfCancelled(sink);
    if (deadlineDegrade(sink, bundle)) {
        bundle.retrieval_ms = timer.milliseconds();
        return bundle;
    }

    const db::StatsExpert *expert = shards_.statsFor(bundle.trace_key);
    if (q.pc) {
        if (auto ps = expert->pcStats(*q.pc))
            bundle.pc_stats = *ps;
        fillSourceContext(*q.pc, entry, bundle);
        if (bundle.pc_stats && sink.active()) {
            sink.emit("pc",
                      "PC " + str::hex(bundle.pc_stats->pc) + ": " +
                          std::to_string(bundle.pc_stats->accesses) +
                          " accesses, " +
                          std::to_string(bundle.pc_stats->misses) +
                          " misses" +
                          (bundle.function_name.empty()
                               ? std::string()
                               : " in " + bundle.function_name));
        }
    }

    switch (q.intent) {
      case QueryIntent::PolicyComparison: {
        // Gather the same statistic under every policy shard of the
        // workload present in the view.
        const db::ShardSet workload_shards =
            shards_.forWorkload(q.workload());
        for (const auto &policy : workload_shards.policies()) {
            const auto *oexp = workload_shards.statsFor(
                db::shardKey(q.workload(), policy));
            if (!oexp)
                continue;
            if (q.pc) {
                if (auto ps = oexp->pcStats(*q.pc)) {
                    bundle.policy_numbers.push_back(PolicyNumber{
                        policy, ps->missRate(), ps->accesses});
                }
            } else {
                bundle.policy_numbers.push_back(
                    PolicyNumber{policy, oexp->summary().missRate(),
                                 oexp->summary().accesses});
            }
        }
        bundle.policy_numbers_label = "miss rates";
        break;
      }
      case QueryIntent::ListPcs:
        // Indexed: the build-time sorted listing, no per-call sort.
        if (cfg_.use_index)
            fillListing(entry.table.uniquePcs(), cfg_.listing_limit,
                        bundle);
        else
            fillListing(entry.table.uniquePcsScan(),
                        cfg_.listing_limit, bundle);
        break;
      case QueryIntent::ListSets:
        if (cfg_.use_index)
            fillListing(entry.table.uniqueSets(), cfg_.listing_limit,
                        bundle);
        else
            fillListing(entry.table.uniqueSetsScan(),
                        cfg_.listing_limit, bundle);
        break;
      case QueryIntent::SetStats: {
        const std::size_t n = q.top_n ? q.top_n : 5;
        if (q.set_id) {
            if (auto ss = expert->setStats(*q.set_id))
                bundle.set_stats.push_back(*ss);
        } else {
            const auto hot = expert->hottestSets(n);
            const auto cold = expert->coldestSets(n);
            bundle.set_stats = hot;
            bundle.set_stats.insert(bundle.set_stats.end(),
                                    cold.begin(), cold.end());
        }
        break;
      }
      case QueryIntent::TopPcs: {
        const std::size_t n = q.top_n ? q.top_n : 10;
        bundle.pc_stats_list =
            expert->topPcs(n, db::StatsExpert::PcOrder::MissCount);
        break;
      }
      case QueryIntent::Explain: {
        // Rich analytic bundle: metadata + top PCs + descriptions
        // (+ per-PC stats and assembly already attached above).
        bundle.metadata = entry.metadata;
        if (bundle.pc_stats_list.empty()) {
            bundle.pc_stats_list = expert->topPcs(
                8, db::StatsExpert::PcOrder::MissCount);
        }
        if (q.workloads.size() > 1) {
            // Cross-workload comparison evidence.
            const std::string policy =
                q.hasPolicy() ? q.policy() : cfg_.default_policy;
            for (const auto &workload : q.workloads) {
                const auto *oexp =
                    shards_.statsFor(db::shardKey(workload, policy));
                if (!oexp)
                    continue;
                bundle.policy_numbers.push_back(
                    PolicyNumber{workload, oexp->summary().missRate(),
                                 oexp->summary().accesses});
            }
            bundle.policy_numbers_label = "workload miss rates";
        } else if (q.pc) {
            // Cross-policy numbers help "why does X beat Y on Z".
            const db::ShardSet workload_shards =
                shards_.forWorkload(q.workload());
            for (const auto &policy : workload_shards.policies()) {
                const auto *oexp = workload_shards.statsFor(
                    db::shardKey(q.workload(), policy));
                if (!oexp)
                    continue;
                if (auto ps = oexp->pcStats(*q.pc)) {
                    bundle.policy_numbers.push_back(PolicyNumber{
                        policy, ps->missRate(), ps->accesses});
                }
            }
            bundle.policy_numbers_label = "miss rates";
        }
        break;
      }
      case QueryIntent::MissRate:
      case QueryIntent::Count:
      case QueryIntent::Arithmetic:
      case QueryIntent::PcStats:
      case QueryIntent::HitMiss:
      case QueryIntent::Concept:
      case QueryIntent::CodeGen:
      case QueryIntent::Unknown:
        // Slice + stats already assembled above; metadata helps
        // whole-workload rates.
        if (!q.pc)
            bundle.metadata = entry.metadata;
        break;
    }

    fail::maybeDelay("retrieve.section");
    throwIfCancelled(sink);
    // No deadline check here: the bundle is fully assembled by now and
    // only stream-side formatting remains — a complete bundle must not
    // be marked degraded.

    // Intent-specific analysis evidence, emitted once it is all
    // assembled (one chunk: the sections above already streamed).
    if (!sink.active()) {
        bundle.retrieval_ms = timer.milliseconds();
        return bundle;
    }
    std::string analysis;
    if (!bundle.policy_numbers.empty()) {
        analysis += bundle.policy_numbers_label + ":";
        for (const auto &pn : bundle.policy_numbers) {
            analysis += " " + pn.policy + "=" +
                        str::percent(pn.value);
        }
        analysis += "\n";
    }
    if (!bundle.values.empty()) {
        analysis += "listed " + std::to_string(bundle.values.size()) +
                    (bundle.values_complete ? " values (complete)\n"
                                            : " values (truncated)\n");
    }
    if (!bundle.set_stats.empty()) {
        analysis += "per-set stats for " +
                    std::to_string(bundle.set_stats.size()) +
                    " sets\n";
    }
    if (!bundle.pc_stats_list.empty()) {
        analysis += "ranked stats for " +
                    std::to_string(bundle.pc_stats_list.size()) +
                    " PCs\n";
    }
    if (!bundle.metadata.empty())
        analysis += bundle.metadata;
    if (!analysis.empty())
        sink.emit("analysis", analysis);

    bundle.retrieval_ms = timer.milliseconds();
    return bundle;
}

namespace {

// Self-registration: the engine constructs Sieve by name through
// RetrieverRegistry and never references this translation unit. The
// factory consumes the engine's per-retriever scenario knobs (ROADMAP
// "engine-level scenario configs"); every knob consumed here is also
// part of cacheFingerprint() above, so tuned engines never alias each
// other's cached bundles.
const RetrieverRegistrar sieve_registrar(
    "sieve",
    [](const db::ShardSet &shards, const RetrieverOptions &opts) {
        SieveConfig cfg;
        cfg.evidence_window =
            opts.getSize("evidence_window", cfg.evidence_window);
        cfg.listing_limit =
            opts.getSize("listing_limit", cfg.listing_limit);
        cfg.default_policy =
            opts.get("default_policy", cfg.default_policy);
        cfg.degrade_filters =
            opts.getBool("degrade_filters", cfg.degrade_filters);
        cfg.use_index = opts.getBool("use_index", cfg.use_index);
        return std::make_unique<SieveRetriever>(shards, cfg);
    });

} // namespace

} // namespace cachemind::retrieval
