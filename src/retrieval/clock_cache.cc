#include "retrieval/clock_cache.hh"

#include <algorithm>

#include "base/random.hh"

namespace cachemind::retrieval {

ClockCacheTier::ClockCacheTier(std::size_t capacity, std::size_t slots)
    : capacity_(capacity)
{
    if (capacity_ == 0)
        return; // disabled: every lookup misses, every insert refuses
    // Power-of-two table, at least 2x capacity, so probe windows stay
    // sparse enough that a window-local eviction is rare.
    std::size_t want = std::max(slots, capacity_ * 2);
    want = std::max(want, kProbeWindow);
    std::size_t n = 1;
    while (n < want)
        n <<= 1;
    slots_ = std::vector<Slot>(n);
    mask_ = n - 1;
}

void
ClockCacheTier::probeSeq(const std::string &key, std::size_t *start,
                         std::size_t *step, std::uint64_t *tag) const
{
    const std::uint64_t h = fnv1a(key);
    *start = static_cast<std::size_t>(h) & mask_;
    // Odd stride on a power-of-two table: the probe sequence visits
    // kProbeWindow distinct slots.
    *step = ((static_cast<std::size_t>(h >> 17) << 1) | 1) & mask_;
    *tag = ((h >> 48) & 0xFFFFull) << kTagShift;
}

ClockCacheTier::BundlePtr
ClockCacheTier::lookup(const std::string &key)
{
    if (slots_.empty()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    std::size_t start = 0, step = 0;
    std::uint64_t tag = 0;
    probeSeq(key, &start, &step, &tag);
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
        Slot &slot = slots_[(start + i * step) & mask_];
        const std::uint64_t m =
            slot.meta.load(std::memory_order_acquire);
        if (stateOf(m) != kStateVisible || tagOf(m) != tag)
            continue;
        // Pin: a slot with a nonzero refcount cannot be taken to the
        // locked state, so key/value are stable until we release. The
        // acq_rel RMW synchronizes with the writer's release
        // transition to visible (ABA-safe even if the slot was reused
        // between the load above and this pin — the key compare below
        // decides, not the tag).
        const std::uint64_t prev =
            slot.meta.fetch_add(1, std::memory_order_acq_rel);
        if (stateOf(prev) != kStateVisible) {
            slot.meta.fetch_sub(1, std::memory_order_release);
            continue;
        }
        if (slot.key == key) {
            BundlePtr value = slot.value;
            // Steady-state hot hits find the bit already set and skip
            // the extra RMW; `prev` is at most one sweep stale, and a
            // lost race with the sweep's clear just costs one early
            // demotion, never correctness.
            if (!(prev & kClockBit))
                slot.meta.fetch_or(kClockBit,
                                   std::memory_order_relaxed);
            slot.meta.fetch_sub(1, std::memory_order_release);
            hits_.fetch_add(1, std::memory_order_relaxed);
            return value;
        }
        slot.meta.fetch_sub(1, std::memory_order_release);
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

void
ClockCacheTier::setState(Slot &slot, std::uint64_t state_and_tag)
{
    // CAS loop preserving the refcount bits: transient reader pins
    // (fetch_add then backed-off fetch_sub on a non-visible slot) may
    // race this, and clobbering them would make the matching release
    // underflow the count.
    std::uint64_t cur = slot.meta.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t desired = (cur & kRefMask) | state_and_tag;
        if (slot.meta.compare_exchange_weak(cur, desired,
                                            std::memory_order_release,
                                            std::memory_order_relaxed))
            return;
    }
}

bool
ClockCacheTier::tryLockForEvict(Slot &slot)
{
    std::uint64_t m = slot.meta.load(std::memory_order_relaxed);
    if (stateOf(m) != kStateVisible || (m & kRefMask) != 0)
        return false;
    // Expected has refcount 0: a reader pinning between the load and
    // the CAS fails the exchange, and one pinning after it observes
    // the locked state and backs off without touching key/value. The
    // acquire half orders the pinned readers' release decrements
    // before our mutation of the slot.
    return slot.meta.compare_exchange_strong(
        m, kStateLocked, std::memory_order_acq_rel,
        std::memory_order_relaxed);
}

void
ClockCacheTier::evictLocked(Slot &slot, std::vector<Displaced> *out)
{
    out->push_back(Displaced{std::move(slot.key),
                             std::move(slot.value)});
    slot.key.clear();
    slot.value.reset();
    setState(slot, kStateEmpty);
    entries_.fetch_sub(1, std::memory_order_relaxed);
    ++evictions_;
}

bool
ClockCacheTier::sweepEvictOne(std::vector<Displaced> *out)
{
    // Two full revolutions: the first clears every set clock bit it
    // passes, so by the second every unpinned visible slot is
    // evictable. Only pinned slots can escape both, and pins are
    // transient — if everything is pinned, report failure and let the
    // caller refuse the insert rather than spin.
    const std::size_t bound = 2 * slots_.size();
    for (std::size_t i = 0; i < bound; ++i) {
        Slot &slot = slots_[hand_];
        hand_ = (hand_ + 1) & mask_;
        std::uint64_t m = slot.meta.load(std::memory_order_relaxed);
        if (stateOf(m) != kStateVisible || (m & kRefMask) != 0)
            continue;
        if (m & kClockBit) {
            // Second chance: clear the bit, preserve everything else.
            while (stateOf(m) == kStateVisible && (m & kClockBit)) {
                if (slot.meta.compare_exchange_weak(
                        m, m & ~kClockBit, std::memory_order_relaxed,
                        std::memory_order_relaxed))
                    break;
            }
            continue;
        }
        if (tryLockForEvict(slot)) {
            evictLocked(slot, out);
            return true;
        }
    }
    return false;
}

std::vector<ClockCacheTier::Displaced>
ClockCacheTier::insert(const std::string &key, BundlePtr value)
{
    std::vector<Displaced> out;
    if (slots_.empty()) {
        out.push_back(Displaced{key, std::move(value)});
        return out;
    }
    std::size_t start = 0, step = 0;
    std::uint64_t tag = 0;
    probeSeq(key, &start, &step, &tag);
    std::lock_guard<std::mutex> lock(writer_mu_);

    // First copy wins: equal keys hold byte-identical bundles, so a
    // concurrent publish of a key another thread just inserted drops
    // the later copy (and displaces nothing).
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
        Slot &slot = slots_[(start + i * step) & mask_];
        const std::uint64_t m =
            slot.meta.load(std::memory_order_relaxed);
        if (stateOf(m) == kStateVisible && tagOf(m) == tag &&
            slot.key == key)
            return out;
    }

    // Exact capacity: evict (for demotion) before admitting, so
    // entries() never exceeds the configured budget — the budget is
    // the budget, with no per-shard round-up slack.
    while (entries_.load(std::memory_order_relaxed) >= capacity_) {
        if (!sweepEvictOne(&out)) {
            ++rejected_;
            out.push_back(Displaced{key, std::move(value)});
            return out;
        }
    }

    // Placement inside the probe window: an empty slot if one exists
    // — the whole window is scanned before any eviction is even
    // considered, or a victim could be taken while a free slot sits
    // later in probe order — else a window-local clock sweep (pass 0
    // grants second chances, pass 1 takes the first unpinned slot).
    std::size_t place = slots_.size();
    for (std::size_t i = 0; i < kProbeWindow; ++i) {
        const std::size_t idx = (start + i * step) & mask_;
        if (stateOf(slots_[idx].meta.load(
                std::memory_order_relaxed)) == kStateEmpty) {
            place = idx;
            break;
        }
    }
    for (int pass = 0; pass < 2 && place == slots_.size(); ++pass) {
        for (std::size_t i = 0; i < kProbeWindow; ++i) {
            const std::size_t idx = (start + i * step) & mask_;
            Slot &slot = slots_[idx];
            std::uint64_t m =
                slot.meta.load(std::memory_order_relaxed);
            if (stateOf(m) != kStateVisible || (m & kRefMask) != 0)
                continue;
            if (pass == 0 && (m & kClockBit)) {
                while (stateOf(m) == kStateVisible &&
                       (m & kClockBit)) {
                    if (slot.meta.compare_exchange_weak(
                            m, m & ~kClockBit,
                            std::memory_order_relaxed,
                            std::memory_order_relaxed))
                        break;
                }
                continue;
            }
            if (tryLockForEvict(slot)) {
                evictLocked(slot, &out);
                place = idx;
                break;
            }
        }
    }
    if (place == slots_.size()) {
        ++rejected_;
        out.push_back(Displaced{key, std::move(value)});
        return out;
    }

    Slot &slot = slots_[place];
    setState(slot, kStateLocked);
    slot.key = key;
    slot.value = std::move(value);
    // Fresh entries start with a clear clock bit — the second chance
    // is earned by a hit, so a swept key that was re-hit always
    // outlives one that never was. Published by the release
    // transition to visible.
    setState(slot, kStateVisible | tag);
    entries_.fetch_add(1, std::memory_order_relaxed);
    ++insertions_;
    return out;
}

TierStats
ClockCacheTier::stats() const
{
    TierStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.capacity = capacity_;
    std::lock_guard<std::mutex> lock(writer_mu_);
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.rejected = rejected_;
    return s;
}

} // namespace cachemind::retrieval
