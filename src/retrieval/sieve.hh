/**
 * @file
 * CacheMind-Sieve: Symbolic-Indexed Entries for Verifiable Extraction
 * (§3.2). A filter-based retriever: semantic workload/policy
 * extraction, symbolic PC/address filters, the statistics expert, and
 * context assembly. Precise for structured queries; bounded by a
 * fixed evidence window, which is what breaks pure counting (§6.1).
 */

#ifndef CACHEMIND_RETRIEVAL_SIEVE_HH
#define CACHEMIND_RETRIEVAL_SIEVE_HH

#include "db/shard.hh"
#include "query/parser.hh"
#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Sieve configuration. */
struct SieveConfig
{
    /** Maximum rows placed in the evidence window. */
    std::size_t evidence_window = 12;
    /** Maximum entries in PC/set listings. */
    std::size_t listing_limit = 64;
    /** Default policy used when the query names none. */
    std::string default_policy = "lru";
    /**
     * Degradation knob for the retrieval-quality study (Figure 5):
     * drop the symbolic address filter and the premise checks, so
     * slices are PC-only windows — "right neighbourhood, imprecise
     * evidence" (medium-quality context).
     */
    bool degrade_filters = false;
    /**
     * Serve slices and listings from the per-shard postings index
     * (default). Off = the reference O(n) scan path, kept for
     * equivalence tests and scan-vs-index measurement; bundles are
     * byte-identical either way.
     */
    bool use_index = true;
};

/** The Sieve retriever (serves any shard view, full store or subset). */
class SieveRetriever : public Retriever
{
  public:
    SieveRetriever(db::ShardSet shards, SieveConfig cfg = SieveConfig{});

    const char *name() const override { return "sieve"; }
    /** Parsing shim: parse the question, then retrieveParsed. */
    ContextBundle retrieve(const std::string &query) override;
    /** Blocking entry: the streaming path with a discarding sink. */
    ContextBundle
    retrieveParsed(const query::ParsedQuery &parsed) override;
    /**
     * Primary implementation: emits the overview before the (costly,
     * once-per-shard) statistics expert is built, then the premise
     * check, the row slice, per-PC statistics, and the intent-specific
     * analysis as each is assembled. The bundle is byte-identical to
     * the blocking overload — both run this code path.
     */
    ContextBundle retrieveParsed(const query::ParsedQuery &parsed,
                                 EvidenceSink &sink) override;

    /** "sieve" + every SieveConfig knob that shapes evidence. */
    std::string cacheFingerprint() const override;
    /** (resolved shard key, slot key): Sieve evidence is slot-pure. */
    std::string
    cacheKey(const query::ParsedQuery &parsed) const override;

    const query::NlQueryParser &parser() const { return parser_; }

  private:
    /** Resolve the trace key from parsed slots (may be empty). */
    std::string resolveTraceKey(const query::ParsedQuery &q) const;

    /** Premise validation for PC/address vs the resolved trace. */
    void checkPremise(const query::ParsedQuery &q,
                      const db::TraceEntry &entry,
                      ContextBundle &bundle) const;

    /** Row slice via the postings index or the reference scan. */
    std::vector<std::uint32_t>
    filterRows(const db::TraceTable &table, const std::uint64_t *pc,
               const std::uint64_t *address, std::size_t limit) const;

    void fillSourceContext(std::uint64_t pc,
                           const db::TraceEntry &entry,
                           ContextBundle &bundle) const;

    db::ShardSet shards_;
    SieveConfig cfg_;
    query::NlQueryParser parser_;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_SIEVE_HH
