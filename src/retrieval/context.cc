#include "retrieval/context.hh"

#include <sstream>

#include "base/str.hh"
#include "sim/llc_replay.hh"

namespace cachemind::retrieval {

const char *
contextQualityName(ContextQuality q)
{
    switch (q) {
      case ContextQuality::Low: return "Low";
      case ContextQuality::Medium: return "Medium";
      case ContextQuality::High: return "High";
    }
    return "?";
}

std::string
renderRowLine(const db::AccessRow &row)
{
    std::ostringstream os;
    os << "program_counter=" << str::hex(row.program_counter)
       << ", memory_address=" << str::hex(row.memory_address)
       << ", cache_set_id=" << row.cache_set_id << ", evict="
       << (row.is_miss ? "Cache Miss" : "Cache Hit");
    if (row.is_miss)
        os << ", miss_type=" << sim::missTypeName(row.miss_type);
    if (row.accessed_reuse_distance != db::kNoValue)
        os << ", reuse_distance=" << row.accessed_reuse_distance;
    os << ", recency=" << row.recency_text;
    if (row.has_victim) {
        os << ", evicted_address=" << str::hex(row.evicted_address);
        if (row.evicted_reuse_distance != db::kNoValue) {
            os << " (needed again in " << row.evicted_reuse_distance
               << " accesses)";
        }
    }
    return os.str();
}

std::string
ContextBundle::render() const
{
    std::ostringstream os;
    os << "[Retriever] " << retriever << "\n";
    if (!trace_key.empty())
        os << "[Trace] " << trace_key << "\n";
    if (premise_violation)
        os << "[Premise check] " << premise_note << "\n";
    if (degraded)
        os << "[Degraded] " << degraded_note << "\n";
    if (!workload_description.empty())
        os << "[Workload] " << workload_description << "\n";
    if (!policy_description.empty())
        os << "[Policy] " << policy_description << "\n";
    if (!rows.empty()) {
        os << "[Trace slice] (" << rows.size() << " of "
           << (total_is_exact ? std::to_string(total_matches)
                              : std::string("unknown"))
           << " matching rows)\n";
        for (const auto &row : rows)
            os << "  " << renderRowLine(row) << "\n";
    }
    if (pc_stats) {
        const auto &s = *pc_stats;
        os << "[PC statistics] pc=" << str::hex(s.pc) << " accesses="
           << s.accesses << " hits=" << s.hits << " miss_rate="
           << str::percent(s.missRate())
           << " mean_reuse_distance=" << str::fixed(s.mean_reuse_distance)
           << " reuse_stdev=" << str::fixed(s.reuse_distance_stdev)
           << " mean_evicted_reuse_distance="
           << str::fixed(s.mean_evicted_reuse_distance)
           << " wrong_eviction_pct="
           << str::fixed(s.wrongEvictionPct()) << "%\n";
    }
    if (!pc_stats_list.empty()) {
        os << "[Per-PC statistics] (" << pc_stats_list.size()
           << " PCs)\n";
        for (const auto &s : pc_stats_list) {
            os << "  pc=" << str::hex(s.pc) << " accesses=" << s.accesses
               << " miss_rate=" << str::percent(s.missRate())
               << " mean_reuse_distance="
               << str::fixed(s.mean_reuse_distance) << " reuse_stdev="
               << str::fixed(s.reuse_distance_stdev) << "\n";
        }
    }
    if (!set_stats.empty()) {
        os << "[Per-set statistics] (" << set_stats.size()
           << " sets)\n";
        for (const auto &s : set_stats) {
            os << "  set=" << s.set << " accesses=" << s.accesses
               << " hits=" << s.hits << " hit_rate="
               << str::percent(s.hitRate()) << "\n";
        }
    }
    if (!policy_numbers.empty()) {
        os << "[Cross-policy "
           << (policy_numbers_label.empty() ? "miss rates"
                                            : policy_numbers_label)
           << "]\n";
        for (const auto &p : policy_numbers) {
            os << "  " << p.policy << ": " << str::fixed(p.value * 100.0)
               << "% over " << p.samples << " accesses\n";
        }
    }
    if (!values.empty()) {
        os << "[Values] (" << values.size()
           << (values_complete ? ", complete" : ", truncated") << ")";
        for (const auto v : values)
            os << " " << str::hex(v);
        os << "\n";
    }
    if (!metadata.empty())
        os << "[Metadata] " << metadata << "\n";
    if (!function_name.empty())
        os << "[Function] " << function_name << "\n";
    if (!function_code.empty())
        os << "[Source]\n" << function_code << "\n";
    if (!assembly.empty())
        os << "[Assembly]\n" << assembly;
    if (!generated_code.empty())
        os << "[Generated code]\n" << generated_code;
    if (computed)
        os << "[Computed] " << str::fixed(*computed, 4) << "\n";
    if (!result_text.empty())
        os << "[Result] " << result_text << "\n";
    return os.str();
}

ContextQuality
assessQuality(const ContextBundle &bundle)
{
    using query::QueryIntent;
    const auto &q = bundle.parsed;

    if (bundle.premise_violation) {
        // A confident premise rejection is *good* context.
        return ContextQuality::High;
    }
    if (q.intent == QueryIntent::Concept) {
        // Concept questions are retrieval-light: an empty bundle is
        // clean context; stray partial slices are the noisy case.
        return bundle.rows.empty() ? ContextQuality::High
                                   : ContextQuality::Medium;
    }
    if (bundle.trace_key.empty()) {
        // Could not even resolve the trace.
        return bundle.metadata.empty() && bundle.rows.empty()
                   ? ContextQuality::Low
                   : ContextQuality::Medium;
    }

    switch (q.intent) {
      case QueryIntent::HitMiss: {
        for (const auto &row : bundle.rows) {
            const bool pc_ok = !q.pc || row.program_counter == *q.pc;
            const bool addr_ok =
                !q.address || row.memory_address == *q.address;
            if (pc_ok && addr_ok)
                return ContextQuality::High;
        }
        if (!bundle.result_text.empty() && q.pc && q.address) {
            // Textual evidence (LlamaIndex/Ranger result strings).
            const bool has_pc = bundle.result_text.find(str::hex(
                                    *q.pc)) != std::string::npos;
            const bool has_addr = bundle.result_text.find(str::hex(
                                      *q.address)) != std::string::npos;
            if (has_pc && has_addr)
                return ContextQuality::High;
        }
        return bundle.rows.empty() ? ContextQuality::Low
                                   : ContextQuality::Medium;
      }
      case QueryIntent::MissRate:
        if (q.pc) {
            if (bundle.pc_stats && bundle.pc_stats->pc == *q.pc)
                return ContextQuality::High;
            if (bundle.computed)
                return ContextQuality::High;
            return bundle.rows.empty() ? ContextQuality::Low
                                       : ContextQuality::Medium;
        }
        return bundle.metadata.empty() && !bundle.computed
                   ? ContextQuality::Medium
                   : ContextQuality::High;
      case QueryIntent::PolicyComparison:
        if (bundle.policy_numbers.size() >= 2)
            return ContextQuality::High;
        return bundle.policy_numbers.empty() ? ContextQuality::Low
                                             : ContextQuality::Medium;
      case QueryIntent::Count:
        if (bundle.total_is_exact)
            return ContextQuality::High;
        return bundle.rows.empty() ? ContextQuality::Low
                                   : ContextQuality::Medium;
      case QueryIntent::Arithmetic:
        if (bundle.computed)
            return ContextQuality::High;
        return bundle.rows.empty() && !bundle.pc_stats
                   ? ContextQuality::Low
                   : ContextQuality::Medium;
      case QueryIntent::ListPcs:
      case QueryIntent::ListSets:
        if (!bundle.values.empty() && bundle.values_complete)
            return ContextQuality::High;
        return bundle.values.empty() ? ContextQuality::Low
                                     : ContextQuality::Medium;
      case QueryIntent::SetStats:
        return bundle.set_stats.empty() ? ContextQuality::Low
                                        : ContextQuality::High;
      case QueryIntent::TopPcs:
      case QueryIntent::PcStats:
        if (bundle.pc_stats || !bundle.pc_stats_list.empty())
            return ContextQuality::High;
        return bundle.rows.empty() ? ContextQuality::Low
                                   : ContextQuality::Medium;
      case QueryIntent::Explain: {
        int richness = 0;
        richness += !bundle.metadata.empty();
        richness += bundle.pc_stats.has_value() ||
                    !bundle.pc_stats_list.empty();
        richness += !bundle.policy_description.empty() ||
                    !bundle.workload_description.empty();
        richness += !bundle.assembly.empty();
        if (richness >= 3)
            return ContextQuality::High;
        return richness >= 1 ? ContextQuality::Medium
                             : ContextQuality::Low;
      }
      case QueryIntent::Concept:
        // Concept questions need little retrieval; any clean context
        // counts as high, noisy partial slices count as medium.
        return bundle.rows.empty() ? ContextQuality::High
                                   : ContextQuality::Medium;
      case QueryIntent::CodeGen:
        return ContextQuality::High;
      case QueryIntent::Unknown: break;
    }
    return ContextQuality::Low;
}

} // namespace cachemind::retrieval
