/**
 * @file
 * The shared cross-question retrieval cache: a thread-safe,
 * sharded-lock LRU mapping (retriever fingerprint, shard key, slot
 * key) strings to immutable evidence bundles.
 *
 * Many users asking overlapping questions about the same (workload,
 * policy) trace slice assemble byte-identical context bundles; the
 * engine memoizes them here so only the first question per slice pays
 * the retrieval cost. Lookups are *single-flight*: when a hot key
 * misses while another worker is already assembling its bundle, the
 * late arrivals wait on the in-flight computation instead of
 * re-running retrieval — the evidence-reuse idea ReasonCache applies
 * to shared KV prefixes, applied to trace-grounded context bundles.
 *
 * Bundles are stored behind shared_ptr<const ContextBundle> and never
 * mutated after insertion; consumers copy-and-patch per-question
 * fields (the parsed query identity) on their own copies.
 */

#ifndef CACHEMIND_RETRIEVAL_CACHE_HH
#define CACHEMIND_RETRIEVAL_CACHE_HH

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Thread-safe sharded-lock LRU over immutable context bundles. */
class RetrievalCache
{
  public:
    using BundlePtr = std::shared_ptr<const ContextBundle>;
    using ComputeFn = std::function<BundlePtr()>;

    /** What one lookup did (per-retriever stats attribution). */
    struct Outcome
    {
        /** Served from cache (including coalesced in-flight waits). */
        bool hit = false;
        /** Entries this lookup's insertion evicted. */
        std::uint64_t evictions = 0;
    };

    /** Aggregate counters across all lock shards. */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    /**
     * @param capacity Maximum resident bundles (0 disables caching:
     *        every lookup computes). Sharded caches round the per-shard
     *        budget up, so the effective capacity can exceed this by
     *        up to lock_shards - 1.
     * @param lock_shards Number of independently locked segments.
     *        More shards = less contention; 1 gives a single global
     *        LRU order (deterministic eviction, used by tests).
     */
    explicit RetrievalCache(std::size_t capacity,
                            std::size_t lock_shards = 8);

    RetrievalCache(const RetrievalCache &) = delete;
    RetrievalCache &operator=(const RetrievalCache &) = delete;

    /**
     * Return the bundle for `key`, computing it at most once per
     * residency: a hit returns the shared bundle immediately; a miss
     * runs `compute` (outside the shard lock) and publishes the
     * result; concurrent misses on the same key wait for the first
     * computation instead of re-running it (counted as hits).
     */
    BundlePtr getOrCompute(const std::string &key,
                           const ComputeFn &compute,
                           Outcome *outcome = nullptr);

    /**
     * Non-blocking lookup for the streaming pipeline: return the
     * bundle when it is resident and ready, nullptr otherwise — a
     * pending in-flight entry counts as a miss rather than being
     * waited on. Streams must never join a single-flight computation
     * (in either direction): a stream holding the in-flight claim
     * while pushing chunks into a consumer-paced channel would let a
     * paused consumer block every blocking ask() coalescing on the
     * key, so streams peek, retrieve on their own, and publish().
     */
    BundlePtr peek(const std::string &key, Outcome *outcome = nullptr);

    /**
     * Publish an already-computed bundle under `key` (the streaming
     * miss path). A no-op when the key is already resident or in
     * flight — equal keys hold byte-identical bundles, so whichever
     * copy landed first is as good. Evictions are reported through
     * `outcome`; the miss itself was counted by the preceding peek().
     */
    void publish(const std::string &key, BundlePtr value,
                 Outcome *outcome = nullptr);

    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }

    /** Resident (ready) bundles across all shards. */
    std::size_t size() const;

    /** Lifetime hit/miss/eviction totals. */
    Counters counters() const;

  private:
    struct Entry
    {
        /** The published bundle (set exactly once, under the lock). */
        BundlePtr value;
        /** Waited on by coalesced lookups while the bundle computes. */
        std::shared_future<BundlePtr> pending;
        /** Position in the shard's LRU list (ready entries only). */
        std::list<std::string>::iterator lru_pos;
        bool ready = false;
    };

    struct LockShard
    {
        mutable std::mutex mu;
        std::unordered_map<std::string, Entry> entries;
        /** Ready keys, most recently used first. */
        std::list<std::string> lru;
        Counters counters;
    };

    LockShard &shardFor(const std::string &key);

    std::size_t capacity_ = 0;
    std::size_t per_shard_capacity_ = 0;
    std::vector<std::unique_ptr<LockShard>> shards_;
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_CACHE_HH
