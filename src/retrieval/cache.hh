/**
 * @file
 * The shared cross-question retrieval cache, now a tier orchestrator:
 * a lock-free-read clock hot tier (clock_cache.hh) over an optional
 * compressed secondary tier (secondary_tier.hh), behind the same
 * public surface the sharded-lock LRU had — getOrCompute single
 * flight, non-blocking peek/publish — so retrievers, askStream, and
 * the serve engine pool need no call-site changes.
 *
 * Many users asking overlapping questions about the same (workload,
 * policy) trace slice assemble byte-identical context bundles; the
 * engine memoizes them here so only the first question per slice pays
 * the retrieval cost. A hot-tier hit is lock-free. A hot-tier miss
 * consults the secondary tier, which stores bundles the hot tier
 * demoted in compressed (binary-codec) form: a secondary hit decodes
 * and re-promotes instead of re-running retrieval. Lookups are
 * *single-flight*: when a hot key misses while another worker is
 * already assembling its bundle, the late arrivals wait on the
 * in-flight computation instead of re-running retrieval — the
 * evidence-reuse idea ReasonCache applies to shared KV prefixes,
 * applied to trace-grounded context bundles.
 *
 * Tier state only ever changes *when* evidence is assembled, never
 * *what* is answered: bundles are immutable behind shared_ptr, equal
 * keys hold byte-identical bundles, and the codec round trip is
 * byte-exact.
 */

#ifndef CACHEMIND_RETRIEVAL_CACHE_HH
#define CACHEMIND_RETRIEVAL_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "retrieval/cache_tier.hh"
#include "retrieval/clock_cache.hh"
#include "retrieval/context.hh"
#include "retrieval/secondary_tier.hh"

namespace cachemind::retrieval {

/** Tiered single-flight cache over immutable context bundles. */
class RetrievalCache
{
  public:
    using BundlePtr = std::shared_ptr<const ContextBundle>;
    using ComputeFn = std::function<BundlePtr()>;

    /** Tier geometry (the Builder knobs). */
    struct Options
    {
        /**
         * Hot-tier resident-bundle budget — exact: occupancy never
         * exceeds it (0 disables caching entirely; every lookup
         * computes).
         */
        std::size_t capacity = 1024;
        /** Hot-tier slot-table size (0 = derive from capacity). */
        std::size_t hot_slots = 0;
        /**
         * Secondary-tier encoded-byte budget (0 disables the tier:
         * bundles the hot tier demotes are destroyed, the pre-tier
         * behavior).
         */
        std::size_t secondary_capacity_bytes = 0;
    };

    /** What one lookup did (per-retriever stats attribution). */
    struct Outcome
    {
        /** Which tier (if any) served the lookup. */
        enum class Source {
            /** Not served from cache: the caller computed. */
            None,
            /** Lock-free hot-tier hit. */
            Hot,
            /** Secondary-tier hit, decoded and re-promoted. */
            Secondary,
            /** Coalesced onto another caller's in-flight compute. */
            Flight,
        };

        /** Served from cache (including coalesced in-flight waits). */
        bool hit = false;
        /** Entries this lookup's insertion evicted (left all tiers). */
        std::uint64_t evictions = 0;
        Source source = Source::None;
    };

    /** Aggregate lookup counters (cache-level, not per-tier). */
    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** Entries that left the cache entirely (all tiers). */
        std::uint64_t evictions = 0;
    };

    /** Per-tier counters + inter-tier traffic. */
    struct TieredCounters
    {
        TierStats hot;
        TierStats secondary;
        bool secondary_enabled = false;
        /** Secondary hits re-admitted into the hot tier. */
        std::uint64_t promotions = 0;
        /** Hot-tier victims admitted into the secondary tier. */
        std::uint64_t demotions = 0;
    };

    explicit RetrievalCache(const Options &options);

    /**
     * Legacy constructor. `lock_shards` is accepted for source
     * compatibility with the sharded-lock LRU this replaced and
     * ignored: the clock hot tier has no shards (reads are lock-free)
     * and its capacity is exact, with no per-shard round-up slack.
     */
    explicit RetrievalCache(std::size_t capacity,
                            std::size_t lock_shards = 8);

    RetrievalCache(const RetrievalCache &) = delete;
    RetrievalCache &operator=(const RetrievalCache &) = delete;

    /**
     * Return the bundle for `key`, computing it at most once per
     * residency: a tier hit returns the shared bundle immediately; a
     * miss runs `compute` (outside every lock) and publishes the
     * result; concurrent misses on the same key wait for the first
     * computation instead of re-running it (counted as hits).
     */
    BundlePtr getOrCompute(const std::string &key,
                           const ComputeFn &compute,
                           Outcome *outcome = nullptr);

    /**
     * Non-blocking lookup for the streaming pipeline: return the
     * bundle when a tier holds it, nullptr otherwise — a pending
     * in-flight entry counts as a miss rather than being waited on.
     * Streams must never join a single-flight computation (in either
     * direction): a stream holding the in-flight claim while pushing
     * chunks into a consumer-paced channel would let a paused
     * consumer block every blocking ask() coalescing on the key, so
     * streams peek, retrieve on their own, and publish().
     */
    BundlePtr peek(const std::string &key, Outcome *outcome = nullptr);

    /**
     * Publish an already-computed bundle under `key` (the streaming
     * miss path). A no-op when the key is already resident or in
     * flight — equal keys hold byte-identical bundles, so whichever
     * copy landed first is as good. Evictions are reported through
     * `outcome`; the miss itself was counted by the preceding peek().
     */
    void publish(const std::string &key, BundlePtr value,
                 Outcome *outcome = nullptr);

    bool enabled() const { return hot_.capacity() > 0; }
    /** Hot-tier entry budget (the legacy `capacity` knob). */
    std::size_t capacity() const { return hot_.capacity(); }
    std::size_t secondaryCapacityBytes() const
    {
        return secondary_ ? secondary_->capacityBytes() : 0;
    }

    /** Resident bundles across all tiers. */
    std::size_t size() const;

    /** Lifetime hit/miss/eviction totals (cache-level). */
    Counters counters() const;

    /** Per-tier stats + promotion/demotion traffic. */
    TieredCounters tiered() const;

  private:
    using Displaced = CacheTier::Displaced;

    /**
     * Probe hot then secondary; a secondary hit re-promotes into the
     * hot tier. Entries evicted out of the cache by the promotion are
     * added to *evictions.
     */
    BundlePtr lookupTiers(const std::string &key,
                          std::uint64_t *evictions,
                          Outcome::Source *source = nullptr);

    /**
     * Admit `value` into the hot tier and demote its victims into the
     * secondary tier. Returns how many entries left the cache
     * entirely (secondary evictions/rejections, or hot victims with
     * no secondary to land in).
     */
    std::uint64_t admit(const std::string &key, BundlePtr value);

    ClockCacheTier hot_;
    std::unique_ptr<SecondaryTier> secondary_;

    /**
     * Single-flight table: keys whose first computation is still
     * running. Entries are admitted to the hot tier *before* the
     * flight is erased, so a lookup that misses the table finds the
     * tiers already populated.
     */
    std::mutex flight_mu_;
    std::unordered_map<std::string, std::shared_future<BundlePtr>>
        flights_;

    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> promotions_{0};
    std::atomic<std::uint64_t> demotions_{0};
};

/**
 * Trace-annotation name of a lookup source: "miss", "hot_hit",
 * "secondary_promote", "single_flight_wait".
 */
const char *cacheSourceName(RetrievalCache::Outcome::Source source);

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_CACHE_HH
