#include "retrieval/secondary_tier.hh"

#include <utility>

#include "base/failpoint.hh"
#include "retrieval/bundle_codec.hh"

namespace cachemind::retrieval {

SecondaryTier::SecondaryTier(std::size_t capacity_bytes)
    : capacity_bytes_(capacity_bytes)
{
}

SecondaryTier::BundlePtr
SecondaryTier::lookup(const std::string &key)
{
    std::string encoded;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            return nullptr;
        }
        // Exclusive tier: extract the entry; the caller re-promotes
        // the decoded bundle into the tier above.
        encoded = std::move(it->second.encoded);
        bytes_ -= chargeOf(key, encoded);
        order_.erase(it->second.order_it);
        map_.erase(it);
        ++hits_;
    }
    // Decode outside the lock — it walks the whole payload.
    fail::maybeCorrupt("cache.secondary.decode", encoded);
    std::optional<ContextBundle> bundle = decodeBundle(encoded);
    if (!bundle) {
        // Self-produced bytes should never be corrupt; degrade to a
        // miss (recompute) rather than surface a broken bundle. The
        // entry was already extracted above, so the corrupt bytes are
        // gone and the recomputed bundle re-enters cleanly.
        std::lock_guard<std::mutex> lock(mu_);
        --hits_;
        ++misses_;
        ++decode_failures_;
        return nullptr;
    }
    return std::make_shared<const ContextBundle>(*std::move(bundle));
}

std::vector<SecondaryTier::Displaced>
SecondaryTier::insert(const std::string &key, BundlePtr value)
{
    std::vector<Displaced> out;
    if (!value) {
        out.push_back(Displaced{key, nullptr});
        return out;
    }
    // Encode outside the lock; only bookkeeping is serialized.
    std::string encoded = encodeBundle(*value);
    const std::size_t charge = chargeOf(key, encoded);
    const std::size_t decoded_size = approxBundleBytes(*value);

    std::lock_guard<std::mutex> lock(mu_);
    if (map_.count(key) != 0)
        return out; // first copy wins (equal keys, equal bytes)
    if (charge > capacity_bytes_) {
        ++rejected_;
        out.push_back(Displaced{key, std::move(value)});
        return out;
    }
    while (bytes_ + charge > capacity_bytes_) {
        const std::string &victim = order_.front();
        auto it = map_.find(victim);
        bytes_ -= chargeOf(victim, it->second.encoded);
        ++evictions_;
        // The encoded form was the only copy: gone for good.
        out.push_back(Displaced{victim, nullptr});
        map_.erase(it);
        order_.pop_front();
    }
    order_.push_back(key);
    auto it = order_.end();
    --it;
    map_.emplace(key, Entry{std::move(encoded), it});
    bytes_ += charge;
    ++insertions_;
    encoded_bytes_total_ += charge;
    decoded_bytes_total_ += decoded_size;
    return out;
}

std::size_t
SecondaryTier::entries() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

std::size_t
SecondaryTier::bytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

TierStats
SecondaryTier::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    TierStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.insertions = insertions_;
    s.evictions = evictions_;
    s.rejected = rejected_;
    s.decode_failures = decode_failures_;
    s.entries = map_.size();
    s.bytes = bytes_;
    s.capacity_bytes = capacity_bytes_;
    s.encoded_bytes_total = encoded_bytes_total_;
    s.decoded_bytes_total = decoded_bytes_total_;
    return s;
}

} // namespace cachemind::retrieval
