/**
 * @file
 * String-keyed factory registry for retrievers.
 *
 * Retrievers self-register from their own translation units (see the
 * registrar blocks at the bottom of sieve.cc, ranger.cc and
 * llamaindex.cc), so the engine core constructs components by name
 * and never changes when a new retriever is added. Downstream users
 * plug in custom retrievers the same way: register a factory under a
 * fresh name and pass that name to CacheMind::Builder.
 *
 * Factories receive a db::ShardSet — the read-only shard view — not a
 * whole database reference, so a retriever can be scoped to any shard
 * subset (one workload, one policy family) as easily as to the full
 * store. A `const TraceDatabase &` still converts implicitly.
 */

#ifndef CACHEMIND_RETRIEVAL_REGISTRY_HH
#define CACHEMIND_RETRIEVAL_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/shard.hh"
#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Process-wide name -> retriever-factory table. */
class RetrieverRegistry
{
  public:
    using Factory =
        std::function<std::unique_ptr<Retriever>(const db::ShardSet &)>;

    /** The singleton registry. */
    static RetrieverRegistry &instance();

    /**
     * Register a factory under a (case-insensitive) name. Returns
     * false and leaves the registry unchanged when the name is
     * already taken.
     */
    bool add(const std::string &name, Factory factory);

    /** True when a factory is registered under the name. */
    bool has(const std::string &name) const;

    /**
     * Construct the named retriever over a shard view; nullptr when
     * the name is unknown.
     */
    std::unique_ptr<Retriever> create(const std::string &name,
                                      const db::ShardSet &shards) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    RetrieverRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

/**
 * Static-initialisation helper: a namespace-scope registrar in a
 * component's translation unit registers it before main() runs.
 */
class RetrieverRegistrar
{
  public:
    RetrieverRegistrar(const std::string &name,
                       RetrieverRegistry::Factory factory);
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_REGISTRY_HH
