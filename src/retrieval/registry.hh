/**
 * @file
 * String-keyed factory registry for retrievers.
 *
 * Retrievers self-register from their own translation units (see the
 * registrar blocks at the bottom of sieve.cc, ranger.cc and
 * llamaindex.cc), so the engine core constructs components by name
 * and never changes when a new retriever is added. Downstream users
 * plug in custom retrievers the same way: register a factory under a
 * fresh name and pass that name to CacheMind::Builder.
 *
 * Factories receive a db::ShardSet — the read-only shard view — not a
 * whole database reference, so a retriever can be scoped to any shard
 * subset (one workload, one policy family) as easily as to the full
 * store. A `const TraceDatabase &` still converts implicitly.
 */

#ifndef CACHEMIND_RETRIEVAL_REGISTRY_HH
#define CACHEMIND_RETRIEVAL_REGISTRY_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/shard.hh"
#include "retrieval/context.hh"

namespace cachemind::retrieval {

/**
 * Scenario knobs forwarded from EngineOptions to a retriever factory
 * as string key/value pairs: each factory consumes the keys it knows
 * (e.g. Sieve's "evidence_window", Ranger's "fidelity") and ignores
 * the rest, so the registry never names concrete retriever types.
 * Every consumed knob must also appear in the constructed retriever's
 * cacheFingerprint() — tuned retrievers must never alias each other's
 * cached bundles.
 */
struct RetrieverOptions
{
    std::map<std::string, std::string> params;

    bool has(const std::string &key) const;
    std::string get(const std::string &key,
                    const std::string &dflt) const;
    std::size_t getSize(const std::string &key, std::size_t dflt) const;
    double getDouble(const std::string &key, double dflt) const;
    bool getBool(const std::string &key, bool dflt) const;
};

/** Process-wide name -> retriever-factory table. */
class RetrieverRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Retriever>(
        const db::ShardSet &, const RetrieverOptions &)>;
    /** Options-unaware factory (custom retrievers with no knobs). */
    using SimpleFactory =
        std::function<std::unique_ptr<Retriever>(const db::ShardSet &)>;

    /** The singleton registry. */
    static RetrieverRegistry &instance();

    /**
     * Register a factory under a (case-insensitive) name. Returns
     * false and leaves the registry unchanged when the name is
     * already taken.
     */
    bool add(const std::string &name, Factory factory);
    bool add(const std::string &name, SimpleFactory factory);

    /** True when a factory is registered under the name. */
    bool has(const std::string &name) const;

    /**
     * Construct the named retriever over a shard view; nullptr when
     * the name is unknown.
     */
    std::unique_ptr<Retriever> create(const std::string &name,
                                      const db::ShardSet &shards) const;
    std::unique_ptr<Retriever>
    create(const std::string &name, const db::ShardSet &shards,
           const RetrieverOptions &options) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    RetrieverRegistry() = default;

    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

/**
 * Static-initialisation helper: a namespace-scope registrar in a
 * component's translation unit registers it before main() runs.
 */
class RetrieverRegistrar
{
  public:
    RetrieverRegistrar(const std::string &name,
                       RetrieverRegistry::Factory factory);
    RetrieverRegistrar(const std::string &name,
                       RetrieverRegistry::SimpleFactory factory);
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_REGISTRY_HH
