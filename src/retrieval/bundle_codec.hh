/**
 * @file
 * Binary codec for ContextBundle — the storage format of the
 * compressed secondary cache tier.
 *
 * The encoding is varint-based (LEB128 for unsigned, zigzag for the
 * kNoValue-sentinel signed columns, raw 8-byte little-endian for
 * doubles so the round trip is bit-exact, NaN included) with a
 * deduplicated string table: every string in the bundle — and a trace
 * slice repeats its function/assembly/recency strings across rows
 * constantly — is stored once and referenced by index. That table is
 * where the compression comes from; no external compression library
 * is involved.
 *
 * The contract is a byte-exact round trip:
 * decodeBundle(encodeBundle(b)) reproduces every field of `b`,
 * including render() output — a secondary-tier hit must be
 * indistinguishable from re-running retrieval.
 */

#ifndef CACHEMIND_RETRIEVAL_BUNDLE_CODEC_HH
#define CACHEMIND_RETRIEVAL_BUNDLE_CODEC_HH

#include <optional>
#include <string>

#include "retrieval/context.hh"

namespace cachemind::retrieval {

/** Encode `bundle` into the versioned binary form. */
std::string encodeBundle(const ContextBundle &bundle);

/**
 * Decode a buffer produced by encodeBundle(). nullopt on truncated,
 * corrupt, or unknown-version input — the caller treats that as a
 * cache miss and recomputes, never as an error.
 */
std::optional<ContextBundle> decodeBundle(const std::string &data);

/**
 * Approximate decoded in-memory footprint of a bundle (struct +
 * heap), the denominator of the secondary tier's compression ratio.
 */
std::size_t approxBundleBytes(const ContextBundle &bundle);

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_BUNDLE_CODEC_HH
