/**
 * @file
 * The retrieved-context bundle handed to the generator LLM, plus the
 * retrieval-quality assessment used for the Figure 5 analysis.
 *
 * A bundle is *evidence*: trace-row slices, per-PC/per-set statistics,
 * cross-policy numbers, metadata, descriptions, and disassembly. The
 * generator is constrained to answer from this bundle — that is the
 * trace-grounding contract of the paper.
 */

#ifndef CACHEMIND_RETRIEVAL_CONTEXT_HH
#define CACHEMIND_RETRIEVAL_CONTEXT_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/deadline.hh"
#include "db/stats_expert.hh"
#include "db/table.hh"
#include "query/parsed_query.hh"

namespace cachemind::retrieval {

/** Qualitative retrieval-context quality (Figure 5 buckets). */
enum class ContextQuality { Low, Medium, High };

const char *contextQualityName(ContextQuality q);

/** Cross-policy statistic for one policy. */
struct PolicyNumber
{
    std::string policy;
    double value = 0.0;
    /** Number of samples behind the value. */
    std::uint64_t samples = 0;
};

/** Everything the retriever assembled for one query. */
struct ContextBundle
{
    /** Which retriever produced this ("sieve"/"ranger"/"llamaindex"). */
    std::string retriever;
    /** Parsed query slots as the retriever understood them. */
    query::ParsedQuery parsed;
    /** Primary trace consulted (empty when unresolved). */
    std::string trace_key;

    /** Exact matching rows (bounded evidence window). */
    std::vector<db::AccessRow> rows;
    /**
     * Total matches known to the retriever. Sieve stops scanning at
     * its window, so for Sieve this equals rows.size(); Ranger's
     * executed programs report the true count.
     */
    std::size_t total_matches = 0;
    /** True when total_matches is the exact full-table count. */
    bool total_is_exact = false;

    /** Statistics for the focal PC (when one was identified). */
    std::optional<db::PcStats> pc_stats;
    /** Ranked or enumerated per-PC statistics. */
    std::vector<db::PcStats> pc_stats_list;
    /** Per-set statistics (set-hotness queries). */
    std::vector<db::SetStats> set_stats;
    /** Cross-policy numbers (miss rates unless noted in `label`). */
    std::vector<PolicyNumber> policy_numbers;
    std::string policy_numbers_label;

    /** Whole-trace metadata summary string. */
    std::string metadata;
    std::string workload_description;
    std::string policy_description;

    /** Source context at the focal PC. */
    std::string function_name;
    std::string function_code;
    std::string assembly;

    /** Unique PC/set listings. */
    std::vector<std::uint64_t> values;
    /** True when `values` is complete (not truncated). */
    bool values_complete = false;

    /** Ranger: scalar computed by the executed program. */
    std::optional<double> computed;
    /** Ranger: the generated retrieval program (rendered Python). */
    std::string generated_code;
    /** Free-text result (Ranger result string / LlamaIndex payloads). */
    std::string result_text;

    /** The retriever detected an inconsistent premise. */
    bool premise_violation = false;
    std::string premise_note;

    /**
     * The retrieval deadline expired mid-assembly and the retriever
     * returned the evidence gathered so far instead of failing. A
     * degraded bundle is answerable but incomplete, and must never be
     * admitted to the RetrievalCache (it would poison every later
     * request for the same key).
     */
    bool degraded = false;
    std::string degraded_note;

    /** Wall-clock retrieval latency in milliseconds (reporting only). */
    double retrieval_ms = 0.0;

    /** Render the bundle as prompt text (Figure 2-style). */
    std::string render() const;
};

/**
 * Heuristic quality assessment: does the bundle contain the evidence
 * class its own parsed query calls for? High = exact slice or exact
 * statistic present; Medium = right trace but partial evidence;
 * Low = wrong/no trace or empty evidence.
 */
ContextQuality assessQuality(const ContextBundle &bundle);

/** Compact single-line rendering of a row (slice listings). */
std::string renderRowLine(const db::AccessRow &row);

/**
 * Streaming consumer of evidence sections. A retriever that supports
 * chunked retrieval calls emit() as each section of the bundle is
 * assembled — resolved-trace overview, row slice, per-PC statistics,
 * per-program results — so the engine's askStream can forward
 * evidence to the user while the rest of the bundle is still being
 * built. emit() is called from the retrieving thread; implementations
 * synchronize internally if they fan the chunks out.
 */
class EvidenceSink
{
  public:
    virtual ~EvidenceSink() = default;

    /**
     * One assembled evidence section. `label` names the section
     * ("overview", "slice", ...); `text` is its rendered evidence.
     */
    virtual void emit(const std::string &label,
                      const std::string &text) = 0;

    /**
     * False when emitted chunks are discarded (NullEvidenceSink):
     * retrievers skip chunk-text formatting entirely for inactive
     * sinks, so the blocking ask() hot path pays nothing for the
     * streaming machinery it runs through.
     */
    virtual bool active() const { return true; }

    /**
     * Cooperative cancellation token. True once the consumer of this
     * stream went away (an abandoned AnswerStream, a dropped serving
     * connection); retrievers poll it between evidence sections / DSL
     * programs via throwIfCancelled() and abandon the remaining
     * retrieval work instead of assembling evidence nobody will read.
     * The blocking path (NullEvidenceSink) is never cancelled.
     */
    virtual bool cancelled() const { return false; }

    /**
     * Retrieval deadline for this request (infinite by default). The
     * engine sets it before retrieval starts; retrievers poll
     * expired() at the same cadence as cancelled() and degrade —
     * return the evidence gathered so far with bundle.degraded set —
     * instead of assembling the rest.
     */
    void setDeadline(const Deadline &d) { deadline_ = d; }
    const Deadline &deadline() const { return deadline_; }
    bool expired() const { return deadline_.expired(); }

  private:
    Deadline deadline_;
};

/**
 * Thrown by throwIfCancelled() to unwind a retrieval whose consumer
 * went away. The engine catches it at the pipeline boundary and
 * retires the stream quietly — it is control flow, not a failure, and
 * must never be recorded as a channel error or published to the
 * retrieval cache (the aborted bundle is incomplete).
 */
struct StreamCancelled
{
};

/** Poll `sink`'s cancellation token; unwind if it tripped. */
inline void
throwIfCancelled(const EvidenceSink &sink)
{
    if (sink.cancelled())
        throw StreamCancelled{};
}

/**
 * Poll `sink`'s deadline. When it has expired, mark `bundle` degraded
 * (once) and return true: the retriever should stop gathering and
 * return the bundle as-is. Checked at the same sites as
 * throwIfCancelled(), after the cancellation poll — a dead consumer
 * beats a late one.
 */
inline bool
deadlineDegrade(EvidenceSink &sink, ContextBundle &bundle)
{
    if (!sink.expired())
        return false;
    if (!bundle.degraded) {
        bundle.degraded = true;
        bundle.degraded_note =
            "retrieval deadline exceeded; evidence is partial";
        if (sink.active())
            sink.emit("degraded", bundle.degraded_note);
    }
    return true;
}

/** Sink that discards every chunk (the non-streaming default). */
class NullEvidenceSink : public EvidenceSink
{
  public:
    void
    emit(const std::string &, const std::string &) override
    {
    }

    bool active() const override { return false; }
};

/**
 * Abstract retriever interface.
 *
 * The staged ask() pipeline parses each question exactly once at the
 * engine level and enters through retrieveParsed(); the string
 * overload remains as a parsing shim for direct/standalone use. The
 * cache hooks let the engine share evidence bundles across questions:
 * cacheFingerprint() identifies the retriever configuration (two
 * retrievers with equal fingerprints assemble identical evidence for
 * equal cache keys), and cacheKey() maps one parsed query to its
 * per-query key — or "" when the bundle must not be shared.
 */
class Retriever
{
  public:
    virtual ~Retriever() = default;
    virtual const char *name() const = 0;

    /** String entry point (parsing shim over retrieveParsed). */
    virtual ContextBundle retrieve(const std::string &query) = 0;

    /**
     * Primary pipeline entry point: assemble evidence for an
     * already-parsed query. The default forwards to the string
     * overload so pre-pipeline custom retrievers keep working.
     */
    virtual ContextBundle
    retrieveParsed(const query::ParsedQuery &parsed)
    {
        return retrieve(parsed.raw);
    }

    /**
     * Streaming overload: assemble the *same* bundle while emitting
     * evidence sections into `sink` as they are produced. The
     * returned bundle must be byte-identical to retrieveParsed(parsed)
     * — streaming changes when evidence becomes visible, never what
     * is retrieved. The default shim retrieves the full bundle, then
     * emits it as a single chunk, so custom retrievers stream (one
     * coarse chunk) with no extra work; the built-ins override this
     * with genuinely incremental section-by-section emission.
     */
    virtual ContextBundle
    retrieveParsed(const query::ParsedQuery &parsed, EvidenceSink &sink)
    {
        ContextBundle bundle = retrieveParsed(parsed);
        if (sink.active())
            sink.emit("bundle", bundle.render());
        return bundle;
    }

    /**
     * Stable identity of this retriever's configuration, the first
     * component of the retrieval-cache key. Every option that changes
     * retrieval output must appear here, or two engines tuned
     * differently would alias each other's bundles.
     */
    virtual std::string cacheFingerprint() const { return name(); }

    /**
     * Per-query cache key ("" = this query's bundle must not be
     * shared). The default is conservative — nothing is cacheable —
     * because a custom retriever may depend on the raw question text;
     * the built-ins override with (shard key, slot key) or stronger.
     */
    virtual std::string
    cacheKey(const query::ParsedQuery &parsed) const
    {
        (void)parsed;
        return std::string();
    }
};

} // namespace cachemind::retrieval

#endif // CACHEMIND_RETRIEVAL_CONTEXT_HH
