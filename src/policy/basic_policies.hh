/**
 * @file
 * Classical replacement policies: LRU, FIFO, Random, and Belady's
 * offline-optimal oracle (MIN with bypass).
 */

#ifndef CACHEMIND_POLICY_BASIC_POLICIES_HH
#define CACHEMIND_POLICY_BASIC_POLICIES_HH

#include "base/random.hh"
#include "policy/replacement.hh"

namespace cachemind::policy {

/** Least-recently-used: evict the line untouched the longest. */
class LruPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "lru"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    void touch(std::uint32_t set, std::uint32_t way);

    std::uint32_t ways_ = 0;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> stamps_; // sets * ways, last-touch tick
};

/** First-in first-out: evict the oldest insertion. */
class FifoPolicy : public ReplacementPolicy
{
  public:
    const char *name() const override { return "fifo"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    std::uint32_t ways_ = 0;
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> stamps_; // insertion tick
};

/** Uniform-random victim (deterministically seeded). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 0x7a11ULL) : rng_(seed) {}

    const char *name() const override { return "random"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;

  private:
    std::uint32_t ways_ = 0;
    Rng rng_;
};

/**
 * Belady's MIN oracle with bypass.
 *
 * Requires AccessInfo::next_use to be populated (the LLC replayer's
 * backward pre-pass). Evicts the resident line whose next use lies
 * farthest in the future; if the incoming line's own next use is
 * farther than every resident's, the fill is bypassed instead, which
 * is the true optimum for a non-inclusive LLC.
 */
class BeladyPolicy : public ReplacementPolicy
{
  public:
    explicit BeladyPolicy(bool allow_bypass = true)
        : allow_bypass_(allow_bypass)
    {}

    const char *name() const override { return "belady"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    bool shouldBypass(std::uint32_t set, const AccessInfo &info,
                      const std::vector<LineMeta> &lines) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    bool allow_bypass_;
    std::uint32_t ways_ = 0;
    std::vector<std::uint64_t> next_use_; // per line, refreshed on touch
};

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_BASIC_POLICIES_HH
