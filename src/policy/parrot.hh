/**
 * @file
 * PARROT-style imitation-learned replacement.
 *
 * The original PARROT (Liu et al., ICML 2020) trains an LSTM offline
 * to imitate Belady's oracle and deploys a light-weight predictor.
 * Offline neural training is out of scope for an offline C++ repo, so
 * this model keeps PARROT's *decision structure* — an offline pass
 * over a Belady-annotated trace learns per-PC reuse behaviour, and the
 * online policy ranks lines by predicted next use — which preserves
 * the property the paper analyses: PARROT's knowledge is PC-local, so
 * it can beat Belady on individual PCs while losing in aggregate
 * (DESIGN.md §2).
 */

#ifndef CACHEMIND_POLICY_PARROT_HH
#define CACHEMIND_POLICY_PARROT_HH

#include <unordered_map>

#include "policy/replacement.hh"

namespace cachemind::policy {

/** Learned per-PC reuse statistics. */
struct ParrotPcProfile
{
    /** Mean log2(reuse distance) over reused accesses. */
    double mean_log2_rd = 0.0;
    /** Fraction of accesses never reused (cache-averse mass). */
    double never_reused = 0.0;
    /** Training samples. */
    std::uint64_t samples = 0;

    /** Predicted forward reuse distance in stream accesses. */
    double predictedReuseDistance() const;
};

/** The offline-trained model: a per-PC profile table. */
struct ParrotModel
{
    std::unordered_map<std::uint64_t, ParrotPcProfile> table;
    /** Fallback distance for PCs unseen in training. */
    double default_rd = 1 << 14;

    /** Predicted reuse distance for `pc`. */
    double predict(std::uint64_t pc) const;

    bool trained() const { return !table.empty(); }
};

/**
 * Accumulates (pc, observed forward reuse distance) pairs from a
 * Belady-annotated training stream and produces a ParrotModel.
 */
class ParrotTrainer
{
  public:
    /** Observe one access; `next_use` may be kNoNextUse. */
    void observe(std::uint64_t pc, std::uint64_t access_index,
                 std::uint64_t next_use);

    /** Finalize the model. */
    ParrotModel finish() const;

  private:
    struct Acc
    {
        double sum_log2 = 0.0;
        std::uint64_t reused = 0;
        std::uint64_t total = 0;
    };

    std::unordered_map<std::uint64_t, Acc> acc_;
};

/**
 * Online policy: evict the line whose predicted next use (last touch
 * index + predicted per-PC reuse distance) is farthest; bypass when
 * the incoming line's predicted next use is farther than every
 * resident's.
 */
class ParrotPolicy : public ReplacementPolicy
{
  public:
    ParrotPolicy() = default;
    explicit ParrotPolicy(ParrotModel model) : model_(std::move(model)) {}

    void setModel(ParrotModel model) { model_ = std::move(model); }
    const ParrotModel &model() const { return model_; }

    const char *name() const override { return "parrot"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    bool shouldBypass(std::uint32_t set, const AccessInfo &info,
                      const std::vector<LineMeta> &lines) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    double predictedNextUse(const LineMeta &line) const;

    ParrotModel model_;
    std::uint32_t ways_ = 0;
    /** Predicted next-use per way, refreshed on touch. */
    std::vector<double> pred_next_use_;
};

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_PARROT_HH
