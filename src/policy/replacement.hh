/**
 * @file
 * Replacement-policy interface.
 *
 * Policies are pluggable per cache level. The interface mirrors the
 * CRC-2/ChampSim contract (touch on hit, victim choice on miss, insert
 * notification) with two extensions the paper's pipeline needs:
 *
 *  - an optional bypass decision on miss (used by Belady-with-bypass,
 *    RLR-style policies, and the bypass use case), and
 *  - per-line *eviction scores*, exported into the trace database as
 *    the `cache_line_eviction_scores` column so that retrieval can
 *    show "what the policy was thinking" for any access.
 *
 * Belady's oracle receives the future via AccessInfo::next_use, which
 * the LLC replayer precomputes in a backward pass over the stream.
 */

#ifndef CACHEMIND_POLICY_REPLACEMENT_HH
#define CACHEMIND_POLICY_REPLACEMENT_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace cachemind::policy {

/** Sentinel next-use index for "never used again". */
constexpr std::uint64_t kNoNextUse =
    std::numeric_limits<std::uint64_t>::max();

/** Everything a policy may consult about the current access. */
struct AccessInfo
{
    /** Program counter of the accessing instruction. */
    std::uint64_t pc = 0;
    /** Full byte address. */
    std::uint64_t address = 0;
    /** Cache-line number (address / line size). */
    std::uint64_t line = 0;
    /** Index of this access within the cache's access stream. */
    std::uint64_t access_index = 0;
    /**
     * Stream index of the next access to the same line, or kNoNextUse.
     * Only populated when an oracle pre-pass ran (Belady, training).
     */
    std::uint64_t next_use = kNoNextUse;
    /** Access type (load/store/prefetch/writeback). */
    trace::AccessType type = trace::AccessType::Load;
};

/** Cache-visible state of one way, shared with the policy. */
struct LineMeta
{
    bool valid = false;
    bool dirty = false;
    /** Resident cache-line number. */
    std::uint64_t line = 0;
    /** PC that last touched the line. */
    std::uint64_t last_pc = 0;
    /** Stream index of the last touch. */
    std::uint64_t last_access_index = 0;
    /** Stream index at which the line was inserted. */
    std::uint64_t insert_index = 0;
    /** next_use recorded at the last touch (oracle runs only). */
    std::uint64_t last_next_use = kNoNextUse;
};

/**
 * Abstract replacement policy.
 *
 * Lifecycle: configure() once per cache, then per access either
 * onHit() or (shouldBypass()? nothing : chooseVictim() on a full set
 * followed by onInsert()). onFill() is used when an invalid way is
 * filled without an eviction.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Short lower-case policy name, e.g. "lru". */
    virtual const char *name() const = 0;

    /** Size the policy's state for a sets x ways cache. */
    virtual void configure(std::uint32_t sets, std::uint32_t ways) = 0;

    /** Notification: hit on `way` of `set`. */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info) = 0;

    /**
     * Should the missing line skip insertion entirely?
     * Default: never bypass.
     */
    virtual bool
    shouldBypass(std::uint32_t set, const AccessInfo &info,
                 const std::vector<LineMeta> &lines)
    {
        (void)set;
        (void)info;
        (void)lines;
        return false;
    }

    /**
     * Pick a victim way in a full set. `lines` has exactly `ways`
     * valid entries. Must return a way in [0, ways).
     */
    virtual std::uint32_t chooseVictim(std::uint32_t set,
                                       const AccessInfo &info,
                                       const std::vector<LineMeta> &lines)
        = 0;

    /** Notification: missing line inserted into `way` of `set`. */
    virtual void onInsert(std::uint32_t set, std::uint32_t way,
                          const AccessInfo &info) = 0;

    /**
     * Notification: line evicted from `way` (called before onInsert
     * of the replacement). Default no-op; learning policies use it.
     */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way, const AccessInfo &info)
    {
        (void)set;
        (void)way;
        (void)info;
    }

    /**
     * Policy-specific eviction score of a resident line; larger means
     * "more evictable". Exported to the database.
     */
    virtual std::uint64_t
    lineScore(std::uint32_t set, std::uint32_t way) const
    {
        (void)set;
        (void)way;
        return 0;
    }
};

/** Policy identifiers used across the database and the retrievers. */
enum class PolicyKind {
    Lru,
    Fifo,
    Random,
    Srrip,
    Brrip,
    Drrip,
    Dip,
    Ship,
    Belady,
    Parrot,
    Mlp,
    Mockingjay,
};

/** All policy kinds in canonical order. */
const std::vector<PolicyKind> &allPolicies();

/** Canonical lower-case name ("lru", "belady", ...). */
const char *policyName(PolicyKind kind);

/** Human-readable one-paragraph description (retrieval context). */
std::string policyDescription(PolicyKind kind);

/** Parse a policy name (case-insensitive); returns false on failure. */
bool policyKindFromName(const std::string &name, PolicyKind &out);

/** Construct a fresh policy instance. */
std::unique_ptr<ReplacementPolicy> makePolicy(PolicyKind kind);

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_REPLACEMENT_HH
