#include "policy/basic_policies.hh"

#include "base/logging.hh"

namespace cachemind::policy {

// ---------------------------------------------------------------- LRU

void
LruPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    tick_ = 0;
    stamps_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
LruPolicy::touch(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &)
{
    touch(set, way);
}

std::uint32_t
LruPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                        const std::vector<LineMeta> &lines)
{
    std::uint32_t victim = 0;
    std::uint64_t best = kNoNextUse;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const std::uint64_t s =
            stamps_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < best) {
            best = s;
            victim = w;
        }
    }
    return victim;
}

void
LruPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &)
{
    touch(set, way);
}

std::uint64_t
LruPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    // More evictable == older == larger score: invert the stamp.
    const std::uint64_t s =
        stamps_[static_cast<std::size_t>(set) * ways_ + way];
    return tick_ >= s ? tick_ - s : 0;
}

// --------------------------------------------------------------- FIFO

void
FifoPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    tick_ = 0;
    stamps_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

void
FifoPolicy::onHit(std::uint32_t, std::uint32_t, const AccessInfo &)
{
    // FIFO ignores hits.
}

std::uint32_t
FifoPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                         const std::vector<LineMeta> &lines)
{
    std::uint32_t victim = 0;
    std::uint64_t best = kNoNextUse;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const std::uint64_t s =
            stamps_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < best) {
            best = s;
            victim = w;
        }
    }
    return victim;
}

void
FifoPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

std::uint64_t
FifoPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const std::uint64_t s =
        stamps_[static_cast<std::size_t>(set) * ways_ + way];
    return tick_ >= s ? tick_ - s : 0;
}

// ------------------------------------------------------------- Random

void
RandomPolicy::configure(std::uint32_t, std::uint32_t ways)
{
    ways_ = ways;
}

void
RandomPolicy::onHit(std::uint32_t, std::uint32_t, const AccessInfo &)
{
}

std::uint32_t
RandomPolicy::chooseVictim(std::uint32_t, const AccessInfo &,
                           const std::vector<LineMeta> &lines)
{
    return static_cast<std::uint32_t>(rng_.nextBelow(lines.size()));
}

void
RandomPolicy::onInsert(std::uint32_t, std::uint32_t, const AccessInfo &)
{
}

// ------------------------------------------------------------- Belady

void
BeladyPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    next_use_.assign(static_cast<std::size_t>(sets) * ways, kNoNextUse);
}

void
BeladyPolicy::onHit(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    next_use_[static_cast<std::size_t>(set) * ways_ + way] =
        info.next_use;
}

bool
BeladyPolicy::shouldBypass(std::uint32_t set, const AccessInfo &info,
                           const std::vector<LineMeta> &lines)
{
    if (!allow_bypass_)
        return false;
    // Bypass when the incoming line is re-used no sooner than every
    // resident line (inserting it could only displace a better line).
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        if (!lines[w].valid)
            return false; // free way: inserting costs nothing
        const std::uint64_t nu =
            next_use_[static_cast<std::size_t>(set) * ways_ + w];
        if (nu > info.next_use)
            return false;
    }
    return true;
}

std::uint32_t
BeladyPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                           const std::vector<LineMeta> &lines)
{
    std::uint32_t victim = 0;
    std::uint64_t farthest = 0;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const std::uint64_t nu =
            next_use_[static_cast<std::size_t>(set) * ways_ + w];
        if (nu >= farthest) {
            farthest = nu;
            victim = w;
        }
    }
    return victim;
}

void
BeladyPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info)
{
    next_use_[static_cast<std::size_t>(set) * ways_ + way] =
        info.next_use;
}

std::uint64_t
BeladyPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const std::uint64_t nu =
        next_use_[static_cast<std::size_t>(set) * ways_ + way];
    // Saturate the sentinel so scores stay printable.
    return nu == kNoNextUse ? 0xffffffffULL : nu;
}

} // namespace cachemind::policy
