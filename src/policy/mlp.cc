#include "policy/mlp.hh"

#include <cmath>

#include "base/random.hh"

namespace cachemind::policy {

TinyMlp::TinyMlp(std::uint64_t seed)
{
    // Small deterministic initialisation in [-0.1, 0.1].
    std::uint64_t x = seed;
    auto next_small = [&x] {
        x = splitMix64(x);
        return (static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5) * 0.2;
    };
    for (auto &row : w1_)
        for (auto &w : row)
            w = static_cast<float>(next_small());
    for (auto &b : b1_)
        b = 0.0f;
    for (auto &w : w2_)
        w = static_cast<float>(next_small());
}

namespace {
inline double
sigmoid(double v)
{
    return 1.0 / (1.0 + std::exp(-v));
}
} // namespace

double
TinyMlp::forward(const std::array<float, kMlpInputs> &x) const
{
    double out = b2_;
    for (std::size_t h = 0; h < kMlpHidden; ++h) {
        double a = b1_[h];
        for (std::size_t i = 0; i < kMlpInputs; ++i)
            a += static_cast<double>(w1_[h][i]) * x[i];
        out += static_cast<double>(w2_[h]) * std::tanh(a);
    }
    return sigmoid(out);
}

void
TinyMlp::train(const std::array<float, kMlpInputs> &x, float target)
{
    // Forward with cached hidden activations.
    std::array<double, kMlpHidden> h_act;
    double out = b2_;
    for (std::size_t h = 0; h < kMlpHidden; ++h) {
        double a = b1_[h];
        for (std::size_t i = 0; i < kMlpInputs; ++i)
            a += static_cast<double>(w1_[h][i]) * x[i];
        h_act[h] = std::tanh(a);
        out += static_cast<double>(w2_[h]) * h_act[h];
    }
    const double y = sigmoid(out);
    // Cross-entropy gradient at the output.
    const double dout = y - static_cast<double>(target);

    for (std::size_t h = 0; h < kMlpHidden; ++h) {
        const double dw2 = dout * h_act[h];
        const double dh =
            dout * static_cast<double>(w2_[h]) *
            (1.0 - h_act[h] * h_act[h]);
        w2_[h] -= static_cast<float>(lr_ * dw2);
        b1_[h] -= static_cast<float>(lr_ * dh);
        for (std::size_t i = 0; i < kMlpInputs; ++i)
            w1_[h][i] -= static_cast<float>(lr_ * dh * x[i]);
    }
    b2_ -= static_cast<float>(lr_ * dout);
}

std::array<float, kMlpInputs>
MlpPolicy::features(const AccessInfo &info, std::uint32_t set)
{
    std::array<float, kMlpInputs> f{};
    // 8 hashed PC bits as +-1 features (program-context perspective).
    const std::uint64_t h = splitMix64(info.pc);
    for (std::size_t i = 0; i < 8; ++i)
        f[i] = (h >> i) & 1 ? 1.0f : -1.0f;
    // Address-bit perspectives: page offset locality + bank parity.
    f[8] = ((info.address >> 6) & 1) ? 1.0f : -1.0f;
    f[9] = ((info.address >> 12) & 1) ? 1.0f : -1.0f;
    // Set index parity (captures set-pressure asymmetries).
    f[10] = (set & 1) ? 1.0f : -1.0f;
    // Access-type perspective.
    f[11] = info.type == trace::AccessType::Store ? 1.0f : -1.0f;
    return f;
}

void
MlpPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    state_.assign(static_cast<std::size_t>(sets) * ways, WayState{});
}

void
MlpPolicy::onHit(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &info)
{
    WayState &s = state_[static_cast<std::size_t>(set) * ways_ + way];
    if (s.valid && !s.reused) {
        // First reuse after fill: the stored features were "alive".
        net_.train(s.feat, 1.0f);
        s.reused = true;
    }
    s.feat = features(info, set);
    s.score = net_.forward(s.feat);
}

std::uint32_t
MlpPolicy::chooseVictim(std::uint32_t set, const AccessInfo &info,
                        const std::vector<LineMeta> &lines)
{
    std::uint32_t victim = 0;
    double worst = 1e18;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const WayState &s =
            state_[static_cast<std::size_t>(set) * ways_ + w];
        // Confidence decays with age: a line predicted alive but
        // untouched for thousands of accesses is a stale prediction,
        // not a protected line (without this, mispredicted dead
        // lines with "lucky" features would squat forever).
        const double age = static_cast<double>(
            info.access_index - lines[w].last_access_index);
        const double v = s.score - age / 4096.0;
        if (v < worst) {
            worst = v;
            victim = w;
        }
    }
    return victim;
}

void
MlpPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    WayState &s = state_[static_cast<std::size_t>(set) * ways_ + way];
    s.feat = features(info, set);
    s.score = net_.forward(s.feat);
    s.reused = false;
    s.valid = true;
}

void
MlpPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    WayState &s = state_[static_cast<std::size_t>(set) * ways_ + way];
    if (s.valid && !s.reused) {
        // Evicted without reuse: the stored features were "dead".
        net_.train(s.feat, 0.0f);
    }
    s.valid = false;
}

std::uint64_t
MlpPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const WayState &s =
        state_[static_cast<std::size_t>(set) * ways_ + way];
    // Export as "evictability" in [0, 1000].
    return static_cast<std::uint64_t>((1.0 - s.score) * 1000.0);
}

} // namespace cachemind::policy
