/**
 * @file
 * Mockingjay replacement (Shah, Jain & Lin, HPCA 2022).
 *
 * Mockingjay predicts a continuous reuse distance per PC with a
 * sampled reuse-distance predictor (RDP) trained by temporal
 * difference, and tracks each resident line's estimated time remaining
 * (ETR). Eviction picks the line whose reuse lies farthest in the
 * future (largest |ETR|); lines predicted to be reused beyond the
 * horizon can be bypassed.
 *
 * The paper's Mockingjay use case restricts RDP training to "stable"
 * PCs (low reuse-distance variance) discovered via CacheMind; that is
 * exposed here through setTrainingFilter().
 */

#ifndef CACHEMIND_POLICY_MOCKINGJAY_HH
#define CACHEMIND_POLICY_MOCKINGJAY_HH

#include <unordered_map>
#include <unordered_set>

#include "policy/replacement.hh"

namespace cachemind::policy {

/** Configuration knobs for Mockingjay. */
struct MockingjayConfig
{
    /** ETR granularity: one ETR tick per this many set accesses. */
    std::uint32_t granularity = 8;
    /** TD learning weight (new sample weight = 1/td_inverse). */
    std::uint32_t td_inverse = 8;
    /** Sample one in this many sets for RDP training. */
    std::uint32_t sample_every = 8;
    /** Max per-set sampler history entries. */
    std::size_t sampler_capacity = 32;
    /** Predicted reuse distance assigned to unseen PCs. */
    std::int32_t default_rd = 1024;
    /** Bypass lines predicted dead beyond this ETR horizon (0=off). */
    std::int32_t bypass_threshold = 0;
};

/** PC-indexed reuse-distance predictor with TD updates. */
class ReuseDistancePredictor
{
  public:
    explicit ReuseDistancePredictor(const MockingjayConfig &cfg)
        : cfg_(cfg)
    {}

    /** Predicted reuse distance (set accesses) for `pc`. */
    std::int32_t predict(std::uint64_t pc) const;

    /** TD update with an observed distance (saturated). */
    void train(std::uint64_t pc, std::int32_t observed);

    /** Number of PCs with learned entries. */
    std::size_t size() const { return table_.size(); }

  private:
    MockingjayConfig cfg_;
    std::unordered_map<std::uint64_t, std::int32_t> table_;
};

/** Mockingjay policy proper. */
class MockingjayPolicy : public ReplacementPolicy
{
  public:
    explicit MockingjayPolicy(MockingjayConfig cfg = MockingjayConfig{})
        : cfg_(cfg), rdp_(cfg)
    {}

    /**
     * Restrict RDP training to this PC set (empty = train on all).
     * Implements the stable-PC training intervention of §6.3.
     */
    void setTrainingFilter(std::unordered_set<std::uint64_t> pcs);

    const ReuseDistancePredictor &rdp() const { return rdp_; }

    const char *name() const override { return "mockingjay"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    bool shouldBypass(std::uint32_t set, const AccessInfo &info,
                      const std::vector<LineMeta> &lines) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    struct SampleEntry
    {
        std::uint64_t line = 0;
        std::uint64_t pc = 0;
        std::uint64_t stamp = 0; // set-access counter at record time
        bool valid = false;
    };

    bool sampledSet(std::uint32_t set) const
    {
        return set % cfg_.sample_every == 0;
    }

    void trainOnAccess(std::uint32_t set, const AccessInfo &info);
    void ageSet(std::uint32_t set);

    MockingjayConfig cfg_;
    ReuseDistancePredictor rdp_;
    std::unordered_set<std::uint64_t> train_filter_;

    std::uint32_t ways_ = 0;
    std::vector<std::int32_t> etr_;           // per line
    std::vector<std::uint64_t> set_clock_;    // per set access counter
    std::vector<std::vector<SampleEntry>> sampler_; // per sampled set
};

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_MOCKINGJAY_HH
