#include "policy/mockingjay.hh"

#include <algorithm>
#include <cstdlib>

#include "base/logging.hh"

namespace cachemind::policy {

std::int32_t
ReuseDistancePredictor::predict(std::uint64_t pc) const
{
    const auto it = table_.find(pc);
    return it == table_.end() ? cfg_.default_rd : it->second;
}

void
ReuseDistancePredictor::train(std::uint64_t pc, std::int32_t observed)
{
    observed = std::min(observed, 1 << 20);
    auto [it, inserted] = table_.emplace(pc, observed);
    if (!inserted) {
        // Temporal-difference blend toward the new observation.
        const std::int64_t old = it->second;
        it->second = static_cast<std::int32_t>(
            old + (static_cast<std::int64_t>(observed) - old) /
                      static_cast<std::int64_t>(cfg_.td_inverse));
    }
}

void
MockingjayPolicy::setTrainingFilter(
    std::unordered_set<std::uint64_t> pcs)
{
    train_filter_ = std::move(pcs);
}

void
MockingjayPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    etr_.assign(static_cast<std::size_t>(sets) * ways, 0);
    set_clock_.assign(sets, 0);
    sampler_.assign(sets / cfg_.sample_every + 1, {});
}

void
MockingjayPolicy::trainOnAccess(std::uint32_t set, const AccessInfo &info)
{
    if (!sampledSet(set))
        return;
    auto &hist = sampler_[set / cfg_.sample_every];
    const std::uint64_t now = set_clock_[set];

    // A revisit of a sampled line yields an observed reuse distance.
    for (auto &e : hist) {
        if (e.valid && e.line == info.line) {
            const bool allowed =
                train_filter_.empty() || train_filter_.count(e.pc) > 0;
            if (allowed) {
                rdp_.train(e.pc,
                           static_cast<std::int32_t>(now - e.stamp));
            }
            e.pc = info.pc;
            e.stamp = now;
            return;
        }
    }
    // New sample; evicting the oldest entry trains "beyond horizon".
    if (hist.size() >= cfg_.sampler_capacity) {
        auto oldest = std::min_element(
            hist.begin(), hist.end(),
            [](const SampleEntry &a, const SampleEntry &b) {
                return a.stamp < b.stamp;
            });
        const bool allowed = train_filter_.empty() ||
                             train_filter_.count(oldest->pc) > 0;
        if (allowed) {
            rdp_.train(oldest->pc,
                       static_cast<std::int32_t>(now - oldest->stamp) * 2);
        }
        *oldest = SampleEntry{info.line, info.pc, now, true};
    } else {
        hist.push_back(SampleEntry{info.line, info.pc, now, true});
    }
}

void
MockingjayPolicy::ageSet(std::uint32_t set)
{
    ++set_clock_[set];
    if (set_clock_[set] % cfg_.granularity != 0)
        return;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w)
        --etr_[base + w];
}

void
MockingjayPolicy::onHit(std::uint32_t set, std::uint32_t way,
                        const AccessInfo &info)
{
    trainOnAccess(set, info);
    ageSet(set);
    etr_[static_cast<std::size_t>(set) * ways_ + way] =
        rdp_.predict(info.pc) /
        static_cast<std::int32_t>(cfg_.granularity);
}

bool
MockingjayPolicy::shouldBypass(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
{
    if (cfg_.bypass_threshold <= 0)
        return false;
    for (const auto &l : lines) {
        if (!l.valid)
            return false;
    }
    const std::int32_t incoming =
        rdp_.predict(info.pc) /
        static_cast<std::int32_t>(cfg_.granularity);
    if (incoming < cfg_.bypass_threshold)
        return false;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (std::abs(etr_[base + w]) > incoming)
            return false;
    }
    return true;
}

std::uint32_t
MockingjayPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                               const std::vector<LineMeta> &lines)
{
    // Farthest estimated reuse: largest |ETR| (negative = overdue,
    // treated as just as evictable as far-future).
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    std::uint32_t victim = 0;
    std::int64_t best = -1;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const std::int64_t v = std::abs(
            static_cast<std::int64_t>(etr_[base + w]));
        if (v > best) {
            best = v;
            victim = w;
        }
    }
    return victim;
}

void
MockingjayPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                           const AccessInfo &info)
{
    trainOnAccess(set, info);
    ageSet(set);
    etr_[static_cast<std::size_t>(set) * ways_ + way] =
        rdp_.predict(info.pc) /
        static_cast<std::int32_t>(cfg_.granularity);
}

std::uint64_t
MockingjayPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const std::int64_t v = std::abs(static_cast<std::int64_t>(
        etr_[static_cast<std::size_t>(set) * ways_ + way]));
    return static_cast<std::uint64_t>(v);
}

} // namespace cachemind::policy
