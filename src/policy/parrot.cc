#include "policy/parrot.hh"

#include <cmath>

#include "base/logging.hh"

namespace cachemind::policy {

double
ParrotPcProfile::predictedReuseDistance() const
{
    if (samples == 0)
        return 1 << 14;
    // Blend the reused-mass expectation with the never-reused mass:
    // a PC whose lines mostly die gets a very large predicted
    // distance, making it a natural bypass/eviction candidate.
    const double reuse_rd = std::exp2(mean_log2_rd);
    const double dead_rd = 1 << 22;
    return reuse_rd * (1.0 - never_reused) + dead_rd * never_reused;
}

double
ParrotModel::predict(std::uint64_t pc) const
{
    const auto it = table.find(pc);
    if (it == table.end())
        return default_rd;
    return it->second.predictedReuseDistance();
}

void
ParrotTrainer::observe(std::uint64_t pc, std::uint64_t access_index,
                       std::uint64_t next_use)
{
    Acc &a = acc_[pc];
    ++a.total;
    if (next_use != kNoNextUse && next_use > access_index) {
        ++a.reused;
        const double rd =
            static_cast<double>(next_use - access_index);
        a.sum_log2 += std::log2(rd + 1.0);
    }
}

ParrotModel
ParrotTrainer::finish() const
{
    ParrotModel model;
    for (const auto &[pc, a] : acc_) {
        ParrotPcProfile p;
        p.samples = a.total;
        p.never_reused = a.total
                             ? 1.0 - static_cast<double>(a.reused) /
                                         static_cast<double>(a.total)
                             : 1.0;
        p.mean_log2_rd =
            a.reused ? a.sum_log2 / static_cast<double>(a.reused) : 0.0;
        model.table.emplace(pc, p);
    }
    return model;
}

void
ParrotPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    pred_next_use_.assign(static_cast<std::size_t>(sets) * ways, 0.0);
}

double
ParrotPolicy::predictedNextUse(const LineMeta &line) const
{
    return static_cast<double>(line.last_access_index) +
           model_.predict(line.last_pc);
}

void
ParrotPolicy::onHit(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &info)
{
    pred_next_use_[static_cast<std::size_t>(set) * ways_ + way] =
        static_cast<double>(info.access_index) + model_.predict(info.pc);
}

bool
ParrotPolicy::shouldBypass(std::uint32_t set, const AccessInfo &info,
                           const std::vector<LineMeta> &lines)
{
    if (!model_.trained())
        return false;
    const double incoming = static_cast<double>(info.access_index) +
                            model_.predict(info.pc);
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        if (!lines[w].valid)
            return false;
        if (pred_next_use_[static_cast<std::size_t>(set) * ways_ + w] >
            incoming) {
            return false;
        }
    }
    return true;
}

std::uint32_t
ParrotPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                           const std::vector<LineMeta> &lines)
{
    if (!model_.trained()) {
        // Cold start: without a learned model every prediction is the
        // same constant, and "farthest predicted next use" would
        // degenerate into MRU eviction. Fall back to recency.
        std::uint32_t victim = 0;
        std::uint64_t oldest = kNoNextUse;
        for (std::uint32_t w = 0; w < lines.size(); ++w) {
            if (lines[w].last_access_index < oldest) {
                oldest = lines[w].last_access_index;
                victim = w;
            }
        }
        return victim;
    }
    std::uint32_t victim = 0;
    double farthest = -1.0;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const double p =
            pred_next_use_[static_cast<std::size_t>(set) * ways_ + w];
        if (p > farthest) {
            farthest = p;
            victim = w;
        }
    }
    return victim;
}

void
ParrotPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                       const AccessInfo &info)
{
    pred_next_use_[static_cast<std::size_t>(set) * ways_ + way] =
        static_cast<double>(info.access_index) + model_.predict(info.pc);
}

std::uint64_t
ParrotPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const double p =
        pred_next_use_[static_cast<std::size_t>(set) * ways_ + way];
    return p < 0.0 ? 0 : static_cast<std::uint64_t>(p);
}

} // namespace cachemind::policy
