/**
 * @file
 * MLP-based replacement (the "Multi-Layer Perceptron" policy of the
 * paper's Table 2, in the spirit of multiperspective reuse prediction,
 * Jiménez & Teran MICRO 2017).
 *
 * A small two-layer perceptron over program-context and recency
 * features predicts whether a resident line will be reused soon; the
 * victim is the line with the lowest predicted reuse probability.
 * Training is online: a hit trains the stored feature vector of the
 * hit line toward "alive", an eviction without reuse trains toward
 * "dead". All arithmetic is float with a fixed update order, so runs
 * are deterministic.
 */

#ifndef CACHEMIND_POLICY_MLP_HH
#define CACHEMIND_POLICY_MLP_HH

#include <array>

#include "policy/replacement.hh"

namespace cachemind::policy {

/** Feature vector dimensionality of the MLP policy. */
constexpr std::size_t kMlpInputs = 12;
/** Hidden-layer width. */
constexpr std::size_t kMlpHidden = 8;

/** A tiny deterministic MLP: kMlpInputs -> kMlpHidden -> 1. */
class TinyMlp
{
  public:
    explicit TinyMlp(std::uint64_t seed = 0x3117ULL);

    /** Forward pass; returns a probability in (0, 1). */
    double forward(const std::array<float, kMlpInputs> &x) const;

    /** One SGD step toward `target` (0 = dead, 1 = alive). */
    void train(const std::array<float, kMlpInputs> &x, float target);

    /** Learning rate (exposed for tests/ablation). */
    void setLearningRate(float lr) { lr_ = lr; }

  private:
    float lr_ = 0.05f;
    std::array<std::array<float, kMlpInputs>, kMlpHidden> w1_;
    std::array<float, kMlpHidden> b1_;
    std::array<float, kMlpHidden> w2_;
    float b2_ = 0.0f;
};

/** Replacement policy driven by TinyMlp reuse prediction. */
class MlpPolicy : public ReplacementPolicy
{
  public:
    explicit MlpPolicy(std::uint64_t seed = 0x3117ULL) : net_(seed) {}

    const char *name() const override { return "mlp"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    /** Build the feature vector for an access. */
    static std::array<float, kMlpInputs> features(const AccessInfo &info,
                                                  std::uint32_t set);

    struct WayState
    {
        std::array<float, kMlpInputs> feat{};
        double score = 0.5; // cached predicted reuse probability
        bool reused = false;
        bool valid = false;
    };

    TinyMlp net_;
    std::uint32_t ways_ = 0;
    std::vector<WayState> state_;
};

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_MLP_HH
