/**
 * @file
 * Policy registry: names, descriptions (used verbatim in retrieval
 * context bundles), and construction.
 */

#include "base/logging.hh"
#include "base/str.hh"
#include "policy/basic_policies.hh"
#include "policy/mlp.hh"
#include "policy/mockingjay.hh"
#include "policy/parrot.hh"
#include "policy/replacement.hh"
#include "policy/rrip_policies.hh"

namespace cachemind::policy {

const std::vector<PolicyKind> &
allPolicies()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,    PolicyKind::Fifo,   PolicyKind::Random,
        PolicyKind::Srrip,  PolicyKind::Brrip,  PolicyKind::Drrip,
        PolicyKind::Dip,    PolicyKind::Ship,   PolicyKind::Belady,
        PolicyKind::Parrot, PolicyKind::Mlp,    PolicyKind::Mockingjay,
    };
    return kinds;
}

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru: return "lru";
      case PolicyKind::Fifo: return "fifo";
      case PolicyKind::Random: return "random";
      case PolicyKind::Srrip: return "srrip";
      case PolicyKind::Brrip: return "brrip";
      case PolicyKind::Drrip: return "drrip";
      case PolicyKind::Dip: return "dip";
      case PolicyKind::Ship: return "ship";
      case PolicyKind::Belady: return "belady";
      case PolicyKind::Parrot: return "parrot";
      case PolicyKind::Mlp: return "mlp";
      case PolicyKind::Mockingjay: return "mockingjay";
    }
    return "?";
}

std::string
policyDescription(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU (least recently used): evicts the line untouched "
               "for the longest time. Strong when recent data is "
               "reused soon; breaks down on scans and weak temporal "
               "locality.";
      case PolicyKind::Fifo:
        return "FIFO: evicts the oldest insertion regardless of use.";
      case PolicyKind::Random:
        return "Random: uniform random victim; a lower-bound baseline.";
      case PolicyKind::Srrip:
        return "SRRIP: 2-bit re-reference interval prediction; "
               "inserts at a long predicted interval to resist scans.";
      case PolicyKind::Brrip:
        return "BRRIP: bimodal RRIP inserting at the most distant "
               "interval with rare exceptions; thrash-resistant.";
      case PolicyKind::Drrip:
        return "DRRIP: set-duelling between SRRIP and BRRIP insertion "
               "with a PSEL counter.";
      case PolicyKind::Dip:
        return "DIP: dynamic insertion policy mixing LRU and bimodal "
               "insertion depths via set duelling.";
      case PolicyKind::Ship:
        return "SHiP: signature-based hit predictor; a PC-signature "
               "counter table biases re-reference predictions so "
               "never-reused signatures insert as dead-on-arrival.";
      case PolicyKind::Belady:
        return "Belady's optimal (MIN): offline oracle evicting the "
               "line whose next use is farthest in the future (with "
               "bypass); the hit-rate upper bound, not implementable "
               "in hardware.";
      case PolicyKind::Parrot:
        return "PARROT: imitation-learned policy trained offline "
               "against Belady's decisions; ranks lines by per-PC "
               "predicted next use, so its knowledge is PC-local.";
      case PolicyKind::Mlp:
        return "MLP: a small multi-layer perceptron over program-"
               "context, address, and access-type features trained "
               "online to predict near-term reuse; evicts the line "
               "with the lowest predicted reuse probability.";
      case PolicyKind::Mockingjay:
        return "Mockingjay: predicts continuous reuse distance with a "
               "PC-indexed sampled predictor (TD-trained) and evicts "
               "the line with the farthest estimated time of reuse "
               "(ETR).";
    }
    return "?";
}

bool
policyKindFromName(const std::string &name, PolicyKind &out)
{
    const std::string lower = str::toLower(str::trim(name));
    for (PolicyKind kind : allPolicies()) {
        if (lower == policyName(kind)) {
            out = kind;
            return true;
        }
    }
    // Accept a few aliases that show up in natural-language queries.
    if (lower == "opt" || lower == "min" || lower == "belady's" ||
        lower == "optimal") {
        out = PolicyKind::Belady;
        return true;
    }
    if (lower == "least recently used") {
        out = PolicyKind::Lru;
        return true;
    }
    return false;
}

std::unique_ptr<ReplacementPolicy>
makePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru: return std::make_unique<LruPolicy>();
      case PolicyKind::Fifo: return std::make_unique<FifoPolicy>();
      case PolicyKind::Random: return std::make_unique<RandomPolicy>();
      case PolicyKind::Srrip: return std::make_unique<SrripPolicy>();
      case PolicyKind::Brrip: return std::make_unique<BrripPolicy>();
      case PolicyKind::Drrip: return std::make_unique<DrripPolicy>();
      case PolicyKind::Dip: return std::make_unique<DipPolicy>();
      case PolicyKind::Ship: return std::make_unique<ShipPolicy>();
      case PolicyKind::Belady: return std::make_unique<BeladyPolicy>();
      case PolicyKind::Parrot: return std::make_unique<ParrotPolicy>();
      case PolicyKind::Mlp: return std::make_unique<MlpPolicy>();
      case PolicyKind::Mockingjay:
        return std::make_unique<MockingjayPolicy>();
    }
    CM_PANIC("unknown policy kind");
}

} // namespace cachemind::policy
