#include "policy/rrip_policies.hh"

#include "base/logging.hh"

namespace cachemind::policy {

// -------------------------------------------------------------- SRRIP

void
SrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    ways_ = ways;
    rrpv_.assign(static_cast<std::size_t>(sets) * ways, kMaxRrpv);
}

void
SrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const AccessInfo &)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] = 0;
}

std::uint32_t
SrripPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                          const std::vector<LineMeta> &lines)
{
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    for (;;) {
        for (std::uint32_t w = 0; w < lines.size(); ++w) {
            if (rrpv_[base + w] >= kMaxRrpv)
                return w;
        }
        for (std::uint32_t w = 0; w < lines.size(); ++w)
            ++rrpv_[base + w];
    }
}

std::uint8_t
SrripPolicy::insertionRrpv(std::uint32_t)
{
    return kMaxRrpv - 1;
}

void
SrripPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &)
{
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
        insertionRrpv(set);
}

std::uint64_t
SrripPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
}

// -------------------------------------------------------------- BRRIP

std::uint8_t
BrripPolicy::insertionRrpv(std::uint32_t)
{
    // Insert at distant RRPV except for a 1/32 bimodal fraction.
    return rng_.nextBool(1.0 / 32.0) ? kMaxRrpv - 1 : kMaxRrpv;
}

// -------------------------------------------------------------- DRRIP

void
DrripPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    SrripPolicy::configure(sets, ways);
    sets_ = sets;
    psel_ = 0;
}

DrripPolicy::Leader
DrripPolicy::leaderOf(std::uint32_t set) const
{
    // 32 leader sets of each flavour, spread through the cache.
    const std::uint32_t region = sets_ >= 64 ? sets_ / 64 : 1;
    if (set % region == 0)
        return (set / region) % 2 == 0 ? Leader::Srrip : Leader::Brrip;
    return Leader::None;
}

std::uint8_t
DrripPolicy::insertionRrpv(std::uint32_t set)
{
    const Leader leader = leaderOf(set);
    bool use_srrip;
    if (leader == Leader::Srrip) {
        use_srrip = true;
    } else if (leader == Leader::Brrip) {
        use_srrip = false;
    } else {
        use_srrip = psel_ >= 0;
    }
    if (use_srrip)
        return kMaxRrpv - 1;
    return rng_.nextBool(1.0 / 32.0) ? kMaxRrpv - 1 : kMaxRrpv;
}

void
DrripPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                      const AccessInfo &info)
{
    // A miss in a leader set votes against that leader's policy.
    const Leader leader = leaderOf(set);
    if (leader == Leader::Srrip)
        psel_ = std::max(psel_ - 1, -1024);
    else if (leader == Leader::Brrip)
        psel_ = std::min(psel_ + 1, 1023);
    SrripPolicy::onInsert(set, way, info);
}

// ---------------------------------------------------------------- DIP

void
DipPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    sets_ = sets;
    ways_ = ways;
    tick_ = 0;
    psel_ = 0;
    stamps_.assign(static_cast<std::size_t>(sets) * ways, 0);
}

DipPolicy::Leader
DipPolicy::leaderOf(std::uint32_t set) const
{
    const std::uint32_t region = sets_ >= 64 ? sets_ / 64 : 1;
    if (set % region == 0)
        return (set / region) % 2 == 0 ? Leader::Lru : Leader::Bip;
    return Leader::None;
}

void
DipPolicy::touchMru(std::uint32_t set, std::uint32_t way)
{
    stamps_[static_cast<std::size_t>(set) * ways_ + way] = ++tick_;
}

void
DipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &)
{
    touchMru(set, way);
}

std::uint32_t
DipPolicy::chooseVictim(std::uint32_t set, const AccessInfo &,
                        const std::vector<LineMeta> &lines)
{
    std::uint32_t victim = 0;
    std::uint64_t best = kNoNextUse;
    for (std::uint32_t w = 0; w < lines.size(); ++w) {
        const std::uint64_t s =
            stamps_[static_cast<std::size_t>(set) * ways_ + w];
        if (s < best) {
            best = s;
            victim = w;
        }
    }
    return victim;
}

void
DipPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &)
{
    const Leader leader = leaderOf(set);
    if (leader == Leader::Lru)
        psel_ = std::max(psel_ - 1, -1024);
    else if (leader == Leader::Bip)
        psel_ = std::min(psel_ + 1, 1023);

    bool use_lru;
    if (leader == Leader::Lru)
        use_lru = true;
    else if (leader == Leader::Bip)
        use_lru = false;
    else
        use_lru = psel_ >= 0;

    if (use_lru || rng_.nextBool(1.0 / 32.0)) {
        touchMru(set, way);
    } else {
        // BIP: leave at LRU position (stamp 0 equivalent: oldest).
        stamps_[static_cast<std::size_t>(set) * ways_ + way] =
            tick_ > ways_ ? tick_ - ways_ : 0;
        ++tick_;
    }
}

std::uint64_t
DipPolicy::lineScore(std::uint32_t set, std::uint32_t way) const
{
    const std::uint64_t s =
        stamps_[static_cast<std::size_t>(set) * ways_ + way];
    return tick_ >= s ? tick_ - s : 0;
}

// --------------------------------------------------------------- SHiP

std::size_t
ShipPolicy::signature(std::uint64_t pc)
{
    return static_cast<std::size_t>(splitMix64(pc) % kShctSize);
}

void
ShipPolicy::configure(std::uint32_t sets, std::uint32_t ways)
{
    SrripPolicy::configure(sets, ways);
    shct_.assign(kShctSize, 1);
    train_.assign(static_cast<std::size_t>(sets) * ways, LineTrain{});
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info)
{
    SrripPolicy::onHit(set, way, info);
    LineTrain &t = train_[static_cast<std::size_t>(set) * ways_ + way];
    if (t.valid && !t.reused) {
        t.reused = true;
        if (shct_[t.sig] < 7)
            ++shct_[t.sig];
    }
}

void
ShipPolicy::onInsert(std::uint32_t set, std::uint32_t way,
                     const AccessInfo &info)
{
    const std::size_t sig = signature(info.pc);
    LineTrain &t = train_[static_cast<std::size_t>(set) * ways_ + way];
    t.sig = sig;
    t.reused = false;
    t.valid = true;
    // Signature with zero counter: predicted dead-on-arrival.
    rrpv_[static_cast<std::size_t>(set) * ways_ + way] =
        shct_[sig] == 0 ? kMaxRrpv : kMaxRrpv - 1;
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                    const AccessInfo &)
{
    LineTrain &t = train_[static_cast<std::size_t>(set) * ways_ + way];
    if (t.valid && !t.reused && shct_[t.sig] > 0)
        --shct_[t.sig];
    t.valid = false;
}

} // namespace cachemind::policy
