/**
 * @file
 * Re-reference interval prediction family (Jaleel et al., ISCA 2010)
 * plus DIP (Qureshi et al., ISCA 2007) and SHiP (Wu et al., MICRO
 * 2011). These are the heuristic baselines the paper's background
 * section discusses and that the lbm analysis compares against.
 */

#ifndef CACHEMIND_POLICY_RRIP_POLICIES_HH
#define CACHEMIND_POLICY_RRIP_POLICIES_HH

#include "base/random.hh"
#include "policy/replacement.hh"

namespace cachemind::policy {

/**
 * Static RRIP: 2-bit re-reference prediction values. Hits promote to
 * RRPV 0; misses insert at RRPV 2 (long re-reference); victims are
 * lines at RRPV 3, aging all lines when none qualify.
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    static constexpr std::uint8_t kMaxRrpv = 3;

    const char *name() const override { return "srrip"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  protected:
    /** RRPV assigned to a newly inserted line. */
    virtual std::uint8_t insertionRrpv(std::uint32_t set);

    std::uint32_t ways_ = 0;
    std::vector<std::uint8_t> rrpv_;
};

/**
 * Bimodal RRIP: inserts at distant RRPV 3 most of the time, RRPV 2
 * with low probability — scan-resistant.
 */
class BrripPolicy : public SrripPolicy
{
  public:
    explicit BrripPolicy(std::uint64_t seed = 0xb441ULL) : rng_(seed) {}

    const char *name() const override { return "brrip"; }

  protected:
    std::uint8_t insertionRrpv(std::uint32_t set) override;

  private:
    Rng rng_;
};

/**
 * Dynamic RRIP: set-duelling between SRRIP and BRRIP insertion using
 * a PSEL counter and leader sets.
 */
class DrripPolicy : public SrripPolicy
{
  public:
    explicit DrripPolicy(std::uint64_t seed = 0xd441ULL) : rng_(seed) {}

    const char *name() const override { return "drrip"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;

  protected:
    std::uint8_t insertionRrpv(std::uint32_t set) override;

  private:
    enum class Leader : std::uint8_t { None, Srrip, Brrip };

    Leader leaderOf(std::uint32_t set) const;

    Rng rng_;
    std::uint32_t sets_ = 0;
    std::int32_t psel_ = 0; // >0 favours SRRIP
};

/**
 * Dynamic insertion policy: LRU vs bimodal insertion (BIP) chosen by
 * set duelling; implemented over recency stamps like LruPolicy.
 */
class DipPolicy : public ReplacementPolicy
{
  public:
    explicit DipPolicy(std::uint64_t seed = 0xd1bULL) : rng_(seed) {}

    const char *name() const override { return "dip"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    std::uint32_t chooseVictim(std::uint32_t set, const AccessInfo &info,
                               const std::vector<LineMeta> &lines)
        override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    std::uint64_t lineScore(std::uint32_t set,
                            std::uint32_t way) const override;

  private:
    enum class Leader : std::uint8_t { None, Lru, Bip };

    Leader leaderOf(std::uint32_t set) const;
    void touchMru(std::uint32_t set, std::uint32_t way);

    Rng rng_;
    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
    std::uint64_t tick_ = 0;
    std::int32_t psel_ = 0; // >0 favours LRU insertion
    std::vector<std::uint64_t> stamps_;
};

/**
 * SHiP: signature-based hit prediction over an SRRIP backbone. A
 * PC-signature-indexed counter table (SHCT) learns whether lines
 * inserted by a signature are re-referenced; never-reused signatures
 * insert at distant RRPV.
 */
class ShipPolicy : public SrripPolicy
{
  public:
    static constexpr std::size_t kShctSize = 16384;

    const char *name() const override { return "ship"; }
    void configure(std::uint32_t sets, std::uint32_t ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const AccessInfo &info) override;
    void onInsert(std::uint32_t set, std::uint32_t way,
                  const AccessInfo &info) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const AccessInfo &info) override;

  private:
    static std::size_t signature(std::uint64_t pc);

    struct LineTrain
    {
        std::size_t sig = 0;
        bool reused = false;
        bool valid = false;
    };

    std::vector<std::uint8_t> shct_;
    std::vector<LineTrain> train_;
};

} // namespace cachemind::policy

#endif // CACHEMIND_POLICY_RRIP_POLICIES_HH
